package core

// Reconfiguration: the three-phase protocol of Figs. 5 and 10 that replaces
// a failed coordinator. A process initiates when it believes every
// higher-ranked view member faulty (§4.2); each phase requires a majority
// of Memb(r) (§4.3); the proposal is computed by Determine/GetStable so
// that any invisibly committed update is preserved (§4.4, §5).

import (
	"fmt"

	"procgroup/internal/event"
	"procgroup/internal/ids"
	"procgroup/internal/member"
)

// maybeInitiate fires the §4.2 initiation rule: initiate(p) holds when the
// coordinator is suspected and every higher-ranked member of Memb(p) is
// suspected too.
func (n *Node) maybeInitiate() {
	if n.reconf != nil || n.mgr == n.id || !n.view.Has(n.id) {
		return
	}
	if !n.isolated.Has(n.mgr) || !n.hiFaultyFull() {
		return
	}
	n.initiate()
}

// initiate starts Phase I: broadcast the interrogation to every view member
// (including the suspected ones — receiving it is what makes a wrongly
// suspected higher-ranked process quit) and record our own response.
func (n *Node) initiate() {
	n.env.Record(event.Initiate, ids.Nil)
	n.disarmTimer()
	n.reconf = &reconfState{
		phase:     1,
		responses: map[ids.ProcID]InterrogateOK{n.id: n.selfResponse()},
		phase2OK:  ids.NewSet(),
	}
	for _, m := range n.view.Members() {
		if m != n.id {
			n.env.Send(m, Interrogate{})
		}
	}
	n.checkReconfPhase()
}

// selfResponse snapshots this node's own Phase-I answer; the initiator is a
// member of PhaseIResp(r).
func (n *Node) selfResponse() InterrogateOK {
	return InterrogateOK{
		Ver:    n.view.Version(),
		Seq:    n.seq.Clone(),
		Next:   n.next.Clone(),
		Faulty: n.inViewFaulty(),
	}
}

// handleInterrogate answers an initiator's Phase-I broadcast (Fig. 10,
// outer side). Interrogations bypass the future-view buffering (§4.1).
func (n *Node) handleInterrogate(from ids.ProcID) {
	// Fig. 10: a receiver that outranks the initiator is in HiFaulty(r);
	// property S1 will isolate it from the whole group, so it quits.
	if n.view.Rank(n.id) > n.view.Rank(from) {
		n.quit("outranked by reconfiguration initiator")
		return
	}
	// Adopt the initiator's HiFaulty: rank is commonly known, so the
	// contents are inferable (§4.5).
	for _, q := range n.view.HigherRanked(from) {
		if n.applyFaulty(q) {
			n.reported.Add(q) // the new coordinator already knows
		}
	}
	n.env.Send(from, n.selfResponse())
	n.next = append(n.next, member.WildcardFor(from))
	n.awaitingReconf = from
	n.step()
}

// handleInterrogateOK collects a Phase-I response.
func (n *Node) handleInterrogateOK(from ids.ProcID, m InterrogateOK) {
	if n.reconf == nil || n.reconf.phase != 1 {
		return
	}
	// Prop. 5.1: respondents' versions lie within ±1 of ours; anything
	// else is from a process S1 should have silenced.
	d := m.Ver - n.view.Version()
	if d < -1 || d > 1 {
		return
	}
	n.reconf.responses[from] = m
	// F2: the responder's pending suspicions become ours, so no exclusion
	// request is lost across the coordinator change (Prop. 6.4).
	for _, f := range m.Faulty {
		if n.applyFaulty(f) {
			n.reported.Add(f)
		}
	}
	n.checkReconfPhase()
}

// handleProposeOK collects a Phase-II response.
func (n *Node) handleProposeOK(from ids.ProcID, m ProposeOK) {
	if n.reconf == nil || n.reconf.phase != 2 || m.Ver != n.reconf.ver || !n.view.Has(from) {
		return
	}
	n.reconf.phase2OK.Add(from)
	n.checkReconfPhase()
}

// checkReconfPhase advances the initiator once the current phase's await
// clause is satisfied ("OK(p) or faulty_r(p)" for every view member),
// enforcing the majority gates of §4.3.
func (n *Node) checkReconfPhase() {
	if n.reconf == nil {
		return
	}
	switch n.reconf.phase {
	case 1:
		for _, m := range n.view.Members() {
			if m == n.id {
				continue
			}
			if _, ok := n.reconf.responses[m]; !ok && !n.isolated.Has(m) {
				return
			}
		}
		if len(n.reconf.responses) < n.view.Majority() {
			n.quit("reconfiguration: interrogation lacks majority")
			return
		}
		n.beginProposal()
	case 2:
		for _, m := range n.view.Members() {
			if m == n.id {
				continue
			}
			if !n.reconf.phase2OK.Has(m) && !n.isolated.Has(m) {
				return
			}
		}
		if 1+n.reconf.phase2OK.Len() < n.view.Majority() {
			n.quit("reconfiguration: proposal lacks majority")
			return
		}
		n.commitReconf()
	}
}

// beginProposal runs Determine and broadcasts Phase II to the live view.
func (n *Node) beginProposal() {
	rl, ver, invis, err := n.determine()
	if err != nil {
		n.quit(fmt.Sprintf("reconfiguration: determine failed: %v", err))
		return
	}
	// GMP-1: believe every process the proposal removes faulty before
	// asking anyone to remove it.
	for _, op := range rl {
		n.noteOp(op)
	}
	n.reconf.rl, n.reconf.ver, n.reconf.invis = rl, ver, invis
	if n.cfg.TwoPhaseReconfig {
		// Claim 7.2 strawman: commit straight away. Without Phase II the
		// proposal never disseminates before the commit, so a later
		// reconfigurer cannot detect an invisible commit (Fig. 11).
		n.commitReconf()
		return
	}
	n.reconf.phase = 2
	prop := Propose{RL: rl, Ver: ver, Invis: invis, Faulty: n.inViewFaulty()}
	for _, m := range n.view.Members() {
		if m != n.id && !n.isolated.Has(m) {
			n.env.Send(m, prop)
		}
	}
	n.checkReconfPhase()
}

// commitReconf is Phase III: install the proposal, broadcast the commit,
// assume the coordinator role, and run the contingent first round.
func (n *Node) commitReconf() {
	rl, ver, invis := n.reconf.rl, n.reconf.ver, n.reconf.invis
	n.reconf = nil
	n.catchUp(rl, ver)
	n.everReconfigured = true
	n.mgr = n.id
	n.reported = ids.NewSet()
	n.sponsored = ids.NewSet()
	n.awaitingReconf = ids.Nil

	commit := ReconfCommit{RL: rl, Ver: ver, Invis: invis, Faulty: n.inViewFaulty()}
	for _, m := range n.view.Members() {
		if m != n.id && !n.isolated.Has(m) {
			n.env.Send(m, commit)
		}
	}
	if invis.IsNil() {
		n.step()
		return
	}
	// "begin Mgr role with relevant operation on invis" (Fig. 10): the
	// reconfiguration commit carried the contingent invitation, so under
	// compression the outer OKs are already on their way.
	n.noteOp(invis)
	n.round = &updateRound{op: invis, ver: ver + 1, okFrom: ids.NewSet(), contingent: n.cfg.Compression}
	if !n.cfg.Compression {
		n.broadcastInvite()
	}
	n.checkRound()
}

// catchUp applies the suffix of rl this node has not installed yet,
// bringing it to version ver (Fig. 10's "if v_r ≥ ver(p)" guard, resolved
// per DESIGN.md §3.3).
func (n *Node) catchUp(rl member.Seq, ver member.Version) {
	behind := int(ver - n.view.Version())
	if behind <= 0 {
		return
	}
	if behind > len(rl) {
		panic(fmt.Sprintf("core: %v at v%d cannot reach v%d with %d ops",
			n.id, n.view.Version(), ver, len(rl)))
	}
	if err := n.install(rl[len(rl)-behind:]); err != nil {
		panic(fmt.Sprintf("core: %v catch-up failed: %v", n.id, err))
	}
}

// handlePropose is the outer side of Phase II (Fig. 10).
func (n *Node) handlePropose(from ids.ProcID, m Propose) {
	if n.reconf != nil {
		return // we are initiating; a lower-ranked proposer will quit soon
	}
	for _, f := range m.Faulty {
		if f == n.id {
			n.quit("declared faulty in reconfiguration proposal")
			return
		}
	}
	for _, op := range m.RL {
		if op.Kind == member.OpRemove && op.Target == n.id {
			n.quit("removed by reconfiguration proposal")
			return
		}
	}
	n.adoptGossip(m.Faulty, nil)
	// Prop. 6.2: p executes faulty_p(RL_r) upon receipt of r's proposal.
	for _, op := range m.RL {
		n.noteOp(op)
	}
	n.env.Send(from, ProposeOK{Ver: m.Ver})
	if len(m.RL) > 0 {
		n.next = member.Next{{Op: m.RL[len(m.RL)-1], Coord: from, Ver: m.Ver}}
	}
	n.awaitingReconf = from
	n.step()
}

// handleReconfCommit is the outer side of Phase III (Fig. 10).
func (n *Node) handleReconfCommit(from ids.ProcID, m ReconfCommit) {
	if n.reconf != nil {
		return
	}
	for _, f := range m.Faulty {
		if f == n.id {
			n.quit("declared faulty in reconfiguration commit")
			return
		}
	}
	if m.Invis.Kind == member.OpRemove && m.Invis.Target == n.id {
		n.quit("contingently excluded after reconfiguration")
		return
	}
	n.adoptGossip(m.Faulty, nil)
	for _, op := range m.RL {
		n.noteOp(op)
	}
	n.catchUp(m.RL, m.Ver)
	n.mgr = from
	// Re-report pending suspicions and re-sponsor pending joiners to the
	// new coordinator (Prop. 6.4).
	n.reported = ids.NewSet()
	n.sponsored = ids.NewSet()
	n.awaitingReconf = ids.Nil
	n.pending = nil
	if m.Invis.IsNil() {
		n.next = nil
	} else {
		n.noteOp(m.Invis)
		n.next = member.Next{{Op: m.Invis, Coord: from, Ver: m.Ver + 1}}
		if n.cfg.Compression {
			n.env.Send(from, OK{Ver: m.Ver + 1})
			n.pending = &pendingUpdate{op: m.Invis, ver: m.Ver + 1}
		}
	}
	n.reportSuspicions()
	n.step()
}
