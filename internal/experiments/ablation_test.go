package experiments

import (
	"testing"

	"procgroup/internal/sim"
)

func TestDetectionLatencyDominatesAgreementTime(t *testing.T) {
	points := DetectionLatencySweep(6, 1, []sim.Time{5, 20, 80, 320})
	if len(points) != 4 {
		t.Fatalf("got %d points", len(points))
	}
	for i := 1; i < len(points); i++ {
		if points[i].ExclusionTime <= points[i-1].ExclusionTime {
			t.Errorf("exclusion time not increasing with FD latency: %+v", points)
		}
		if points[i].ReconfigTime <= points[i-1].ReconfigTime {
			t.Errorf("reconfiguration time not increasing with FD latency: %+v", points)
		}
	}
	// The protocol adds only message delays on top of detection latency:
	// agreement should track the detector, not dwarf it.
	last := points[len(points)-1]
	if last.ExclusionTime > 2*last.DetectDelay+100 {
		t.Errorf("exclusion time %d far exceeds detection latency %d: protocol is waiting on time somewhere",
			last.ExclusionTime, last.DetectDelay)
	}
}

func TestFaultToleranceRegimes(t *testing.T) {
	results := FaultToleranceAblation(8, 1)
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	basic := results[0]
	if !basic.Converged || basic.FinalViewSize != 1 {
		t.Errorf("basic mode should survive n−1 failures down to a singleton view: %+v", basic)
	}
	minority := results[1]
	if !minority.Converged || minority.FinalViewSize != 8-minority.Crashes {
		t.Errorf("final mode should survive a minority loss: %+v", minority)
	}
	majority := results[2]
	if majority.Converged {
		t.Errorf("final mode converged after losing a majority: %+v", majority)
	}
	if !majority.SurvivorsBlocked {
		t.Errorf("survivors neither blocked safely nor stayed consistent: %+v", majority)
	}
}

func TestCompressionAblationSaves(t *testing.T) {
	compressed, plain, err := CompressionAblation(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if compressed >= plain {
		t.Errorf("compression saved nothing: %d vs %d", compressed, plain)
	}
	// §3.1: the saving is roughly one invitation broadcast per chained
	// round — n−2-ish messages per extra exclusion.
	if plain-compressed < 10 {
		t.Errorf("saving %d suspiciously small for n=10", plain-compressed)
	}
}
