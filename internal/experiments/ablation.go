package experiments

// Ablations over the design choices DESIGN.md calls out: failure-detection
// latency (the only "time" in the system), the majority gate, and the
// initiation timeout. None of these have paper tables — they quantify the
// knobs the paper leaves abstract.

import (
	"fmt"

	"procgroup/internal/core"
	"procgroup/internal/netsim"
	"procgroup/internal/scenario"
	"procgroup/internal/sim"
)

// LatencyPoint is one row of the detection-latency sweep.
type LatencyPoint struct {
	// DetectDelay is the oracle's crash→suspicion latency (ticks).
	DetectDelay sim.Time
	// ExclusionTime is crash→stable-view time for an outer failure.
	ExclusionTime sim.Time
	// ReconfigTime is crash→stable-view time for a coordinator failure.
	ReconfigTime sim.Time
}

// DetectionLatencySweep measures time-to-agreement as a function of
// failure-detection latency. The protocol itself never waits on clocks, so
// agreement time should be detection latency plus a few message delays —
// which is exactly what the sweep shows.
func DetectionLatencySweep(n int, seed int64, delays []sim.Time) []LatencyPoint {
	out := make([]LatencyPoint, 0, len(delays))
	for _, d := range delays {
		point := LatencyPoint{DetectDelay: d}
		for _, coord := range []bool{false, true} {
			c := scenario.New(scenario.Options{
				N: n, Seed: seed, Config: core.DefaultConfig(),
				Delay:       netsim.ConstDelay(2),
				DetectDelay: netsim.ConstDelay(d),
			})
			procs := c.Initial()
			victim := procs[n-1]
			if coord {
				victim = procs[0]
			}
			const crashAt = 10
			c.CrashAt(victim, crashAt)
			c.Run()
			// Stable time = the latest install event in the run.
			var last sim.Time
			for _, e := range c.Rec.Events() {
				if e.Kind.String() == "install" && sim.Time(e.Time) > last {
					last = sim.Time(e.Time)
				}
			}
			if coord {
				point.ReconfigTime = last - crashAt
			} else {
				point.ExclusionTime = last - crashAt
			}
		}
		out = append(out, point)
	}
	return out
}

// ToleranceResult contrasts the two fault-tolerance regimes of the paper:
// the basic §3.1 algorithm tolerates |Memb|−1 failures while the
// coordinator survives; the final algorithm trades that for coordinator
// fault-tolerance and blocks once a majority is lost (§4.3).
type ToleranceResult struct {
	Mode             string
	Crashes          int
	Converged        bool
	FinalViewSize    int
	SurvivorsBlocked bool
}

// FaultToleranceAblation crashes k of n processes (never the coordinator in
// basic mode; always including it in final mode) and reports the outcome.
func FaultToleranceAblation(n int, seed int64) []ToleranceResult {
	var out []ToleranceResult

	// Basic algorithm, coordinator alive: exclude everyone else.
	{
		cfg := core.Config{Compression: true, MajorityCheck: false, ReconfigWait: 0}
		c := scenario.New(scenario.Options{N: n, Seed: seed, Config: cfg})
		procs := c.Initial()
		for i := 1; i < n; i++ {
			c.CrashAt(procs[i], sim.Time(10+40*i))
		}
		c.Run()
		v, err := c.StableView()
		res := ToleranceResult{Mode: "basic (Mgr immortal)", Crashes: n - 1, Converged: err == nil}
		if err == nil {
			res.FinalViewSize = v.Size()
		}
		out = append(out, res)
	}

	// Final algorithm: minority loss including the coordinator.
	{
		c := scenario.New(scenario.Options{N: n, Seed: seed, Config: core.DefaultConfig()})
		procs := c.Initial()
		minority := (n - 1) / 2
		for i := 0; i < minority; i++ {
			c.CrashAt(procs[i], sim.Time(10+40*i))
		}
		c.Run()
		v, err := c.StableView()
		res := ToleranceResult{Mode: "final, minority lost", Crashes: minority, Converged: err == nil}
		if err == nil {
			res.FinalViewSize = v.Size()
		}
		out = append(out, res)
	}

	// Final algorithm: majority loss — survivors must block, not diverge.
	{
		c := scenario.New(scenario.Options{N: n, Seed: seed, Config: core.DefaultConfig()})
		procs := c.Initial()
		majority := n/2 + 1
		for i := 0; i < majority; i++ {
			c.CrashAt(procs[i], 10)
		}
		c.Run()
		_, err := c.StableView()
		blocked := err != nil && c.Check().OK()
		out = append(out, ToleranceResult{
			Mode:             "final, majority lost",
			Crashes:          majority,
			Converged:        false,
			SurvivorsBlocked: blocked,
		})
	}
	return out
}

// CompressionAblation reports the total message cost of a fixed three-
// exclusion burst with and without §3.1 round compression.
func CompressionAblation(n int, seed int64) (compressed, plain int, err error) {
	run := func(compress bool) (int, error) {
		cfg := core.Config{Compression: compress, MajorityCheck: false, ReconfigWait: 0}
		c := scenario.New(scenario.Options{
			N: n, Seed: seed, Config: cfg, MuteOracle: true,
			Delay: netsim.ConstDelay(1),
		})
		procs := c.Initial()
		c.SuspectAt(procs[0], procs[n-1], 10)
		c.SuspectAt(procs[0], procs[n-2], 11)
		c.SuspectAt(procs[0], procs[n-3], 13)
		c.Run()
		v, sverr := c.StableView()
		if sverr != nil {
			return 0, sverr
		}
		if v.Size() != n-3 {
			return 0, fmt.Errorf("burst incomplete: %v", v)
		}
		return c.Messages(core.ExclusionLabels...), nil
	}
	if compressed, err = run(true); err != nil {
		return 0, 0, err
	}
	if plain, err = run(false); err != nil {
		return 0, 0, err
	}
	return compressed, plain, nil
}
