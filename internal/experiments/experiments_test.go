package experiments

import "testing"

func TestTwoPhaseCostMatchesPaper(t *testing.T) {
	for _, n := range []int{4, 8, 16, 32, 64, 128} {
		got, want := TwoPhaseCost(n, 1)
		if got != want {
			t.Errorf("n=%d: two-phase %d, paper %d", n, got, want)
		}
	}
}

func TestCompressedStreamMatchesPaper(t *testing.T) {
	for _, n := range []int{4, 6, 8, 12, 16} {
		got, want := CompressedStreamCost(n, 1)
		if got != want {
			t.Errorf("n=%d: compressed stream %d, paper (n−1)²=%d", n, got, want)
		}
	}
}

func TestReconfigCostMatchesPaper(t *testing.T) {
	for _, n := range []int{4, 8, 16, 32, 64} {
		got, want := ReconfigCost(n, 1)
		if got != want {
			t.Errorf("n=%d: reconfiguration %d, paper %d", n, got, want)
		}
	}
}

func TestPlainStreamCostsMoreThanCompressed(t *testing.T) {
	for _, n := range []int{6, 8, 12} {
		plain, paperPlain := PlainStreamCost(n, 1)
		comp, paperComp := CompressedStreamCost(n, 1)
		if plain != paperPlain {
			t.Errorf("n=%d: plain stream %d, paper %d", n, plain, paperPlain)
		}
		if comp >= plain {
			t.Errorf("n=%d: compression saved nothing (%d vs %d)", n, comp, plain)
		}
		if paperComp >= paperPlain {
			t.Errorf("n=%d: paper formulas inverted", n)
		}
	}
}

func TestWorstCaseChainQuadratic(t *testing.T) {
	// The worst case is O(n²): dividing by n² must stay bounded while a
	// linear fit would not. Compare growth against the single
	// reconfiguration cost (5n−9, linear).
	prevRatio := 0.0
	for _, n := range []int{8, 16, 32} {
		got, attempts, err := WorstCaseChain(n, 1)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if attempts != n-(n/2+1) {
			t.Errorf("n=%d: τ=%d, want %d", n, attempts, n-(n/2+1))
		}
		single, _ := ReconfigCost(n, 1)
		ratio := float64(got) / float64(single)
		if ratio <= prevRatio {
			t.Errorf("n=%d: worst-case/single ratio %.1f did not grow (prev %.1f): not superlinear",
				n, ratio, prevRatio)
		}
		prevRatio = ratio
	}
}

func TestSymmetricAndOnePhaseCosts(t *testing.T) {
	for _, n := range []int{8, 16, 32} {
		if got, want := SymmetricCost(n, 1); got != want {
			t.Errorf("n=%d: symmetric %d, want %d", n, got, want)
		}
		if got, want := OnePhaseCost(n, 1); got != want {
			t.Errorf("n=%d: one-phase %d, want %d", n, got, want)
		}
	}
}

func TestTable1Rows(t *testing.T) {
	rows := Table1(21)
	if len(rows) != 4 {
		t.Fatalf("Table1 returned %d rows", len(rows))
	}
	wantQ := []bool{false, true, true, true}
	wantP := []bool{true, false, true, false}
	for i, row := range rows {
		if row.QInitiated != wantQ[i] || row.PInitiated != wantP[i] {
			t.Errorf("row %d (%s/%s): q=%v p=%v, want q=%v p=%v",
				i+1, row.PActual, row.QThinksP, row.QInitiated, row.PInitiated, wantQ[i], wantP[i])
		}
		if !row.CheckerOK {
			t.Errorf("row %d: checker failed", i+1)
		}
		if row.NewMgr.IsNil() {
			t.Errorf("row %d: no new coordinator", i+1)
		}
	}
}

func TestScenarioVerdicts(t *testing.T) {
	if v := Figure3(22); !v.CheckerOK {
		t.Errorf("Figure 3: %+v", v)
	}
	if v := Figure7(24); !v.CheckerOK {
		t.Errorf("Figure 7: %+v", v)
	}
	if v := Claim71(31); v.CheckerOK {
		t.Errorf("Claim 7.1 strawman unexpectedly passed: %+v", v)
	}
	two, three := Claim72(51)
	if two.CheckerOK {
		t.Errorf("Claim 7.2 two-phase unexpectedly passed: %+v", two)
	}
	if !three.CheckerOK {
		t.Errorf("Claim 7.2 three-phase control failed: %+v", three)
	}
	churn, msgs := Churn(61)
	if !churn.CheckerOK || msgs == 0 {
		t.Errorf("churn: %+v (%d msgs)", churn, msgs)
	}
	if v := CutAnalysis(71); !v.CheckerOK {
		t.Errorf("cut analysis: %+v", v)
	}
	if rep := RunGMPCheck(6, 81); !rep.OK() {
		t.Errorf("standard compliance run failed:\n%v", rep)
	}
}
