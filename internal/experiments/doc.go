// Package experiments implements the evaluation runs of DESIGN.md's
// experiment index E1–E14: one function per table/figure of the paper,
// each returning the measured numbers next to the paper's closed-form
// prediction. cmd/gmpbench renders them as tables; bench_test.go wraps
// them as benchmarks; EXPERIMENTS.md records their output.
package experiments
