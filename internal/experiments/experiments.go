package experiments

import (
	"fmt"

	"procgroup/internal/baseline"
	"procgroup/internal/baseline/onephase"
	"procgroup/internal/baseline/symmetric"
	"procgroup/internal/baseline/twophase"
	"procgroup/internal/check"
	"procgroup/internal/core"
	"procgroup/internal/event"
	"procgroup/internal/ids"
	"procgroup/internal/netsim"
	"procgroup/internal/scenario"
	"procgroup/internal/sim"
)

// basicCfg is the §3.1 algorithm (coordinator cannot fail).
func basicCfg() core.Config {
	return core.Config{Compression: false, MajorityCheck: false, ReconfigWait: 0}
}

// compressedCfg is basicCfg with §3.1 round compression.
func compressedCfg() core.Config {
	return core.Config{Compression: true, MajorityCheck: false, ReconfigWait: 0}
}

// --- E2: plain two-phase exclusion (§7.2 best case 1, ≤ 3n−5) -------------

// TwoPhaseCost measures one uncompressed exclusion.
func TwoPhaseCost(n int, seed int64) (measured, paper int) {
	c := scenario.New(scenario.Options{N: n, Seed: seed, Config: basicCfg()})
	c.CrashAt(c.Initial()[n-1], 50)
	c.Run()
	return c.Messages(core.ExclusionLabels...), 3*n - 5
}

// --- E3: compressed stream (§7.2, (n−1)² total for n−1 exclusions) --------

// CompressedStreamCost measures n−1 back-to-back exclusions with failures
// spaced one round apart so every commit piggybacks the next invitation.
func CompressedStreamCost(n int, seed int64) (measured, paper int) {
	c := scenario.New(scenario.Options{
		N: n, Seed: seed, Config: compressedCfg(), MuteOracle: true,
		Delay: netsim.ConstDelay(1),
	})
	procs := c.Initial()
	c.SuspectAt(procs[0], procs[1], 10)
	for k := 2; k < n; k++ {
		c.SuspectAt(procs[0], procs[k], sim.Time(11+2*(k-2)))
	}
	c.Run()
	return c.Messages(core.ExclusionLabels...), (n - 1) * (n - 1)
}

// --- E4: reconfiguration (§7.2 best case 3, ≤ 5n−9) ------------------------

// ReconfigCost measures one coordinator replacement.
func ReconfigCost(n int, seed int64) (measured, paper int) {
	c := scenario.New(scenario.Options{N: n, Seed: seed, Config: core.DefaultConfig()})
	c.CrashAt(c.Initial()[0], 50)
	c.Run()
	return c.Messages(core.ReconfigLabels...), 5*n - 9
}

// --- E5: worst case (§7.2, τ successive failed reconfigurations, O(n²)) ---

// WorstCaseChain crashes the coordinator and then each successive
// reconfiguration initiator in mid-proposal, exhausting the group's
// tolerable failures τ = n − µ(n); the last initiator succeeds. It returns
// the total reconfiguration traffic and the number of failed attempts.
func WorstCaseChain(n int, seed int64) (measured, attempts int, err error) {
	c := scenario.New(scenario.Options{N: n, Seed: seed, Config: core.DefaultConfig()})
	procs := c.Initial()
	tau := n - (n/2 + 1)
	c.CrashAt(procs[0], 50)
	for i := 1; i < tau; i++ {
		// Initiator p_{i+1} dies after sending one proposal message.
		c.CrashDuringBroadcast(procs[i], 1, core.LabelPropose)
	}
	c.Run()
	if _, sverr := c.StableView(); sverr != nil {
		return 0, tau, fmt.Errorf("worst-case chain did not converge: %w", sverr)
	}
	return c.Messages(core.ReconfigLabels...), tau, nil
}

// --- E6: compressed vs plain stream ----------------------------------------

// PlainStreamCost measures n−1 exclusions with compression disabled: each
// exclusion pays the full two-phase price on the shrinking view.
func PlainStreamCost(n int, seed int64) (measured, paper int) {
	c := scenario.New(scenario.Options{
		N: n, Seed: seed, Config: basicCfg(), MuteOracle: true,
		Delay: netsim.ConstDelay(1),
	})
	procs := c.Initial()
	c.SuspectAt(procs[0], procs[1], 10)
	for k := 2; k < n; k++ {
		c.SuspectAt(procs[0], procs[k], sim.Time(11+3*(k-2)))
	}
	c.Run()
	// Paper: each exclusion from a view of size m costs 3m−5; summed over
	// m = n … 2.
	total := 0
	for m := n; m >= 2; m-- {
		total += 3*m - 5
	}
	return c.Messages(core.ExclusionLabels...), total
}

// --- E12: symmetric and one-phase baselines --------------------------------

// SymmetricCost measures one exclusion under the Bruso-style symmetric
// protocol ((n−1)² accusations).
func SymmetricCost(n int, seed int64) (measured, paper int) {
	h := baseline.NewHarness(baseline.Options{N: n, Seed: seed},
		func(id ids.ProcID, env core.Env) baseline.Node { return symmetric.New(id, env) })
	h.CrashAt(h.Initial()[n-1], 20)
	h.Run()
	return h.Messages(symmetric.LabelAccuse), (n - 1) * (n - 1)
}

// OnePhaseCost measures one exclusion under the (unsound) one-phase
// strawman.
func OnePhaseCost(n int, seed int64) (measured, paper int) {
	h := baseline.NewHarness(baseline.Options{N: n, Seed: seed},
		func(id ids.ProcID, env core.Env) baseline.Node { return onephase.New(id, env) })
	h.CrashAt(h.Initial()[n-1], 20)
	h.Run()
	return h.Messages(onephase.LabelRemove), n - 2
}

// --- E1: Table 1 ------------------------------------------------------------

// Table1Row is one scenario of Table 1.
type Table1Row struct {
	PActual    string
	QThinksP   string
	QInitiated bool
	PInitiated bool
	NewMgr     ids.ProcID
	CheckerOK  bool
}

// Table1 reruns the four scenarios of §4.2's Table 1 on a 5-process group
// (p1 = Mgr, p2 = p, p3 = q).
func Table1(seed int64) []Table1Row {
	build := func() (*scenario.Cluster, []ids.ProcID) {
		c := scenario.New(scenario.Options{N: 5, Seed: seed, Config: core.DefaultConfig(), MuteOracle: true})
		return c, c.Initial()
	}
	finish := func(c *scenario.Cluster, row *Table1Row) {
		c.Run()
		for _, e := range c.Rec.Events() {
			if e.Kind != event.Initiate {
				continue
			}
			switch e.Proc.Site {
			case "p2":
				row.PInitiated = true
			case "p3":
				row.QInitiated = true
			}
		}
		if v, err := c.StableView(); err == nil {
			row.NewMgr = v.Mgr()
		}
		row.CheckerOK = c.Check().OK()
	}

	var rows []Table1Row

	// Row 1: p up, q thinks p up.
	{
		c, procs := build()
		c.CrashAt(procs[0], 10)
		for _, obs := range procs[1:] {
			c.SuspectAt(obs, procs[0], 20)
		}
		row := Table1Row{PActual: "up", QThinksP: "up"}
		finish(c, &row)
		rows = append(rows, row)
	}
	// Row 2: p failed, q thinks p up.
	{
		c, procs := build()
		c.CrashAt(procs[0], 10)
		c.CrashAt(procs[1], 12)
		for _, obs := range procs[2:] {
			c.SuspectAt(obs, procs[0], 20)
		}
		row := Table1Row{PActual: "failed", QThinksP: "up"}
		finish(c, &row)
		rows = append(rows, row)
	}
	// Row 3: p up, q thinks p failed.
	{
		c, procs := build()
		c.CrashAt(procs[0], 10)
		for _, obs := range procs[1:] {
			c.SuspectAt(obs, procs[0], 20)
		}
		c.SuspectAt(procs[2], procs[1], 20)
		row := Table1Row{PActual: "up", QThinksP: "failed"}
		finish(c, &row)
		rows = append(rows, row)
	}
	// Row 4: p failed, q thinks p failed.
	{
		c, procs := build()
		c.CrashAt(procs[0], 10)
		c.CrashAt(procs[1], 12)
		for _, obs := range procs[2:] {
			c.SuspectAt(obs, procs[0], 20)
			c.SuspectAt(obs, procs[1], 22)
		}
		row := Table1Row{PActual: "failed", QThinksP: "failed"}
		finish(c, &row)
		rows = append(rows, row)
	}
	return rows
}

// --- E7/E9: interrupted and invisible commits -------------------------------

// Verdict summarizes a scenario run for the harness output.
type Verdict struct {
	Name      string
	CheckerOK bool
	Detail    string
}

// Figure3 runs the interrupted-commit scenario (E7).
func Figure3(seed int64) Verdict {
	c := scenario.New(scenario.Options{N: 5, Seed: seed, Config: core.DefaultConfig(), MuteOracle: true})
	procs := c.Initial()
	c.SuspectAt(procs[0], procs[4], 10)
	c.CrashDuringBroadcast(procs[0], 1, core.LabelCommit)
	for _, obs := range procs[1:4] {
		c.SuspectAt(obs, procs[0], 200)
	}
	c.Run()
	v, err := c.StableView()
	detail := "no stable view"
	if err == nil {
		detail = fmt.Sprintf("restored view %v under new Mgr %v", v, v.Mgr())
	}
	return Verdict{Name: "Figure 3 (interrupted commit)", CheckerOK: c.Check().OK(), Detail: detail}
}

// Figure7 runs the invisible-commit scenario (E9) and reports whether the
// dead witness's view matched the survivors' reconstruction.
func Figure7(seed int64) Verdict {
	c := scenario.New(scenario.Options{N: 7, Seed: seed, Config: core.DefaultConfig(), MuteOracle: true})
	procs := c.Initial()
	c.SuspectAt(procs[0], procs[6], 10)
	c.CrashDuringBroadcast(procs[0], 1, core.LabelCommit)
	c.CrashAt(procs[1], 100)
	for _, obs := range procs[2:6] {
		c.SuspectAt(obs, procs[0], 200)
		c.SuspectAt(obs, procs[1], 210)
	}
	c.Run()
	grave := c.Views(procs[1])
	alive := c.Views(procs[2])
	detail := "invisible commit not reproduced"
	if len(grave) >= 2 && len(alive) >= 2 {
		same := len(grave[1].Members) == len(alive[1].Members)
		if same {
			g := ids.NewSet(grave[1].Members...)
			for _, m := range alive[1].Members {
				if !g.Has(m) {
					same = false
				}
			}
		}
		detail = fmt.Sprintf("dead p2 held v1=%v; survivors reconstructed v1=%v; identical=%v",
			grave[1].Members, alive[1].Members, same)
	}
	return Verdict{Name: "Figure 7 (invisible commit)", CheckerOK: c.Check().OK(), Detail: detail}
}

// --- E10/E11: the impossibility claims --------------------------------------

// Claim71 runs the cross-suspicion split under the one-phase strawman and
// returns the convicting report.
func Claim71(seed int64) Verdict {
	h := baseline.NewHarness(baseline.Options{N: 6, Seed: seed, MuteOracle: true},
		func(id ids.ProcID, env core.Env) baseline.Node { return onephase.New(id, env) })
	procs := h.Initial()
	for _, p := range procs[1:4] {
		h.SuspectAt(p, procs[0], 10)
	}
	h.SuspectAt(procs[0], procs[1], 10)
	for _, p := range procs[4:6] {
		h.SuspectAt(p, procs[1], 10)
	}
	h.Run()
	rep := h.Check()
	return Verdict{
		Name:      "Claim 7.1 (one-phase violates GMP)",
		CheckerOK: rep.OK(),
		Detail:    fmt.Sprintf("%d GMP-3 violations detected", len(rep.Of("GMP-3"))),
	}
}

// Claim72 runs the Figure 11 schedule under both reconfiguration depths.
func Claim72(seed int64) (twoPhase, threePhase Verdict) {
	c2 := twophase.Figure11(twophase.Config(), seed)
	c2.Run()
	rep2 := c2.Check()
	twoPhase = Verdict{
		Name:      "Claim 7.2 (two-phase reconfiguration)",
		CheckerOK: rep2.OK(),
		Detail:    fmt.Sprintf("%d GMP-3 violations detected", len(rep2.Of("GMP-3"))),
	}
	c3 := twophase.Figure11(core.DefaultConfig(), seed)
	c3.Run()
	rep3 := c3.Check()
	threePhase = Verdict{
		Name:      "Claim 7.2 control (three-phase, same schedule)",
		CheckerOK: rep3.OK(),
		Detail:    "invisible commit detected and propagated",
	}
	return twoPhase, threePhase
}

// --- E13: online churn -------------------------------------------------------

// Churn runs a mixed join/exclusion stream and returns the verdict plus
// total protocol traffic.
func Churn(seed int64) (Verdict, int) {
	c := scenario.New(scenario.Options{N: 6, Seed: seed, Config: core.DefaultConfig()})
	procs := c.Initial()
	c.CrashAt(procs[5], 50)
	c.JoinAt(ids.ProcID{Site: "q1"}, procs[1], 400)
	c.CrashAt(procs[4], 800)
	c.CrashAt(procs[0], 1200)
	c.JoinAt(ids.ProcID{Site: "q2"}, procs[2], 1800)
	c.Run()
	v, err := c.StableView()
	detail := "did not converge"
	if err == nil {
		detail = fmt.Sprintf("final view %v after 3 exclusions + 2 joins", v)
	}
	return Verdict{Name: "Online churn (§7)", CheckerOK: c.Check().OK(), Detail: detail},
		c.Messages(core.ProtocolLabels...)
}

// --- E14: cut structure -------------------------------------------------------

// CutAnalysis reruns a busy schedule and reports the number of installed
// views whose separating cuts the checker verified (Theorem 6.1).
func CutAnalysis(seed int64) Verdict {
	c := scenario.New(scenario.Options{N: 7, Seed: seed, Config: core.DefaultConfig()})
	procs := c.Initial()
	c.CrashAt(procs[6], 40)
	c.CrashAt(procs[0], 300)
	c.CrashAt(procs[5], 700)
	c.Run()
	rep := c.Check()
	installs := 0
	for _, e := range c.Rec.Events() {
		if e.Kind == event.InstallView {
			installs++
		}
	}
	return Verdict{
		Name:      "Theorem 6.1 (cut separation)",
		CheckerOK: rep.OK(),
		Detail: fmt.Sprintf("%d view installations, %d cut violations",
			installs, len(rep.Of("CUT"))),
	}
}

// RunGMPCheck executes a standard mixed schedule and returns the checker
// report — the harness's catch-all compliance row.
func RunGMPCheck(n int, seed int64) *check.Report {
	c := scenario.New(scenario.Options{N: n, Seed: seed, Config: core.DefaultConfig()})
	procs := c.Initial()
	c.CrashAt(procs[n-1], 50)
	c.CrashAt(procs[0], 400)
	c.JoinAt(ids.ProcID{Site: "j1"}, procs[1], 900)
	c.Run()
	return c.Check()
}
