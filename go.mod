module procgroup

go 1.24
