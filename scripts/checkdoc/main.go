// checkdoc enforces the repository's documentation floor: every Go
// package — internal layers, the root library, commands and examples —
// must carry a package comment (a doc comment on the package clause of at
// least one non-test file). It exits nonzero listing the offending
// directories, and is run by the CI docs job alongside the README snippet
// build.
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	hasGo := map[string]bool{}  // dir → has non-test .go files
	hasDoc := map[string]bool{} // dir → some non-test file carries a package comment
	fset := token.NewFileSet()

	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != "." && (strings.HasPrefix(name, ".") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		hasGo[dir] = true
		f, perr := parser.ParseFile(fset, path, nil, parser.PackageClauseOnly|parser.ParseComments)
		if perr != nil {
			return fmt.Errorf("parse %s: %w", path, perr)
		}
		if f.Doc != nil && len(f.Doc.List) > 0 {
			hasDoc[dir] = true
		}
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "checkdoc:", err)
		os.Exit(1)
	}

	var bad []string
	for dir := range hasGo {
		if !hasDoc[dir] {
			bad = append(bad, dir)
		}
	}
	sort.Strings(bad)
	if len(bad) > 0 {
		fmt.Fprintln(os.Stderr, "packages without a package comment:")
		for _, d := range bad {
			fmt.Fprintf(os.Stderr, "  %s\n", d)
		}
		os.Exit(1)
	}
	fmt.Printf("checkdoc: %d packages documented\n", len(hasGo))
}
