#!/usr/bin/env bash
# The CI docs gate: every package carries a package comment, and every
# fenced ```go block in README.md is a self-contained program that builds
# against the current tree (so the README cannot drift from the API).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== package comments"
go run ./scripts/checkdoc

echo "== README snippets"
tmp="readme-snippets-check"
rm -rf "$tmp"
mkdir -p "$tmp"
trap 'rm -rf "$tmp"' EXIT

awk -v tmp="$tmp" '
  /^```go$/ { in_snip = 1; n++; out = sprintf("%s/snip%d.go", tmp, n); next }
  /^```$/   { in_snip = 0 }
  in_snip   { print > out }
' README.md

count=0
for f in "$tmp"/snip*.go; do
  [ -e "$f" ] || continue
  d="$tmp/$(basename "$f" .go)"
  mkdir -p "$d"
  mv "$f" "$d/main.go"
  go build -o /dev/null "./$d"
  count=$((count + 1))
done
if [ "$count" -eq 0 ]; then
  echo "no \`\`\`go snippets found in README.md" >&2
  exit 1
fi
echo "built $count README snippet(s)"
