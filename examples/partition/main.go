// Partition: §4.3's majority rule in action. Reconfiguration installs a
// view only with responses from a majority of the initiator's local view —
// "an initiator can fail to obtain a majority in three ways: the
// initiator, itself, may be faulty, the network may be partitioned, or a
// majority of processes may be faulty. In the last instance, no algorithm
// can make progress unless some recoveries occur."
//
// Run 1 crashes a minority (the group reconfigures and carries on);
// run 2 crashes a majority (the survivors block rather than diverge).
package main

import (
	"fmt"

	"procgroup"
)

func run(crashes int) {
	sim := procgroup.NewSim(procgroup.SimOptions{
		N:      5,
		Seed:   7,
		Config: procgroup.DefaultConfig(),
	})
	procs := sim.Initial()
	fmt.Printf("--- crashing %d of 5 processes (including the coordinator) ---\n", crashes)
	for i := 0; i < crashes; i++ {
		sim.CrashAt(procs[i], 50)
	}
	sim.Run()

	if v, err := sim.StableView(); err == nil {
		fmt.Printf("survivors agreed on %v (coordinator %v)\n", v, v.Mgr())
	} else {
		fmt.Printf("no new view was installed: %v\n", err)
	}
	for _, p := range procs {
		n := sim.Node(p)
		state := "crashed"
		if sim.Alive(p) {
			state = fmt.Sprintf("alive, view %v", n.View())
		} else if n.QuitReason() != "" {
			state = "quit: " + n.QuitReason()
		}
		fmt.Printf("  %v: %s\n", p, state)
	}
	fmt.Printf("checker: %v\n\n", sim.Check())
}

func main() {
	run(2) // minority lost: reconfiguration succeeds
	run(3) // majority lost: the paper says progress is impossible — and
	// crucially the survivors never install divergent views
}
