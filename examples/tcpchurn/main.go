// TCP churn: the paper's deployment target made literal. A 5-node group
// runs over real TCP loopback sockets — every directed channel is its own
// length-prefixed gob stream, the substrate the §2.1 model describes as an
// asynchronous network of reliable FIFO channels — and is driven through a
// join + crash churn scenario, including the loss of the coordinator. The
// ViewWatcher condenses the per-process install streams into the agreed
// view sequence GMP guarantees.
package main

import (
	"fmt"
	"log"
	"time"

	"procgroup"
)

func main() {
	tr := procgroup.NewTCPTransport()
	g := procgroup.StartGroup(procgroup.GroupOptions{
		N:              5,
		HeartbeatEvery: 20 * time.Millisecond,
		SuspectAfter:   200 * time.Millisecond,
		Transport:      tr,
	})
	defer g.Stop()
	w := procgroup.Watch(g)
	defer w.Close()

	converge := func(what string) {
		v, err := g.WaitConverged(30 * time.Second)
		if err != nil {
			log.Fatalf("%s: %v", what, err)
		}
		fmt.Printf("%-24s -> %v\n", what, v)
	}

	converge("bootstrap")
	for _, p := range g.Running() {
		if addr, ok := tr.Addr(p); ok {
			fmt.Printf("  %-4v listening on %s\n", p, addr)
		}
	}

	// Churn: a join, a member crash, then the coordinator's crash (which
	// forces the three-phase reconfiguration of §4.1 over the sockets).
	g.Join(procgroup.Named("q1"), procgroup.Named("p2"))
	converge("join q1 via p2")
	g.Kill(procgroup.Named("p4"))
	converge("kill p4")
	g.Kill(procgroup.Named("p1"))
	converge("kill p1 (coordinator)")

	// The installs are all published, but the watcher goroutine may still
	// be forwarding them; drain until the stream goes quiet.
	fmt.Println("\nagreed view sequence (ViewWatcher):")
drain:
	for {
		select {
		case av := <-w.Views():
			fmt.Printf("  v%-3d %v\n", av.Ver, av.Members)
		case <-time.After(500 * time.Millisecond):
			break drain
		}
	}
	fmt.Printf("\ninstalls dropped from the update stream: %d\n", g.Dropped())
}
