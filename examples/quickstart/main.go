// Quickstart: boot a live five-process group, kill an ordinary member,
// then kill the coordinator, and watch every survivor install the same
// sequence of views — the protocol's headline guarantee (GMP-3).
package main

import (
	"fmt"
	"log"
	"time"

	"procgroup"
)

func main() {
	group := procgroup.StartGroup(procgroup.GroupOptions{
		N:              5,
		HeartbeatEvery: 10 * time.Millisecond,
		SuspectAfter:   60 * time.Millisecond,
	})
	defer group.Stop()

	v, err := group.WaitConverged(5 * time.Second)
	if err != nil {
		log.Fatalf("bootstrap: %v", err)
	}
	fmt.Printf("group up: %v  (coordinator %v)\n", v, v.Mgr())

	fmt.Println("\n--- killing an ordinary member (p4) ---")
	group.Kill(procgroup.Named("p4"))
	v, err = group.WaitConverged(10 * time.Second)
	if err != nil {
		log.Fatalf("after killing p4: %v", err)
	}
	fmt.Printf("agreed view: %v\n", v)

	fmt.Println("\n--- killing the coordinator (p1) ---")
	group.Kill(procgroup.Named("p1"))
	v, err = group.WaitConverged(15 * time.Second)
	if err != nil {
		log.Fatalf("after killing p1: %v", err)
	}
	fmt.Printf("agreed view: %v  (new coordinator %v)\n", v, v.Mgr())

	fmt.Println("\n--- view sequences per process (identical prefixes) ---")
	for _, p := range group.Running() {
		fmt.Printf("%v:", p)
		for _, vr := range group.Recorder().ViewLog(p) {
			fmt.Printf("  v%d%v", vr.Ver, vr.Members)
		}
		fmt.Println()
	}
}
