// Churn: §7's "fully online" claim — the protocol processes a constant
// stream of exclusions and joins without ever blocking. This example runs
// the deterministic simulator so the run is exactly reproducible, prints
// the agreed view after each change, and closes with the message-count
// accounting and the GMP checker's verdict.
package main

import (
	"fmt"
	"log"

	"procgroup"
)

func main() {
	sim := procgroup.NewSim(procgroup.SimOptions{
		N:      6,
		Seed:   2026,
		Config: procgroup.DefaultConfig(),
	})
	procs := sim.Initial()

	// A churn schedule: crashes and joins interleaved, including a
	// coordinator failure in the middle of the stream.
	sim.CrashAt(procs[5], 50)
	sim.JoinAt(procgroup.Named("q1"), procs[1], 400)
	sim.CrashAt(procs[4], 800)
	sim.CrashAt(procs[0], 1200) // the coordinator itself
	sim.JoinAt(procgroup.Named("q2"), procs[2], 1800)
	sim.CrashAt(procs[3], 2200)
	sim.JoinAt(procgroup.Named("q3"), procs[1], 2600)
	sim.Run()

	fmt.Println("view sequence at p2 (identical at every survivor):")
	for _, vr := range sim.Views(procs[1]) {
		fmt.Printf("  v%-2d %v\n", vr.Ver, vr.Members)
	}

	v, err := sim.StableView()
	if err != nil {
		log.Fatalf("group did not converge: %v", err)
	}
	fmt.Printf("\nfinal agreed view: %v (coordinator %v)\n", v, v.Mgr())

	fmt.Println("\nmessage accounting:")
	fmt.Printf("  exclusion traffic (Invite/OK/Commit):                  %4d\n",
		sim.Messages(procgroup.ExclusionLabels...))
	fmt.Printf("  reconfiguration traffic (Interrogate/Propose/Commit…): %4d\n",
		sim.Messages(procgroup.ReconfigLabels...))
	fmt.Printf("  total protocol messages:                               %4d\n",
		sim.Messages(procgroup.ProtocolLabels...))

	fmt.Printf("\nchecker verdict: %v\n", sim.Check())
}
