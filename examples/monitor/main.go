// Monitor: the paper's motivating application shape — a set of processes
// that "co-operate to perform some task … monitor one another, subdivide a
// computation" (§1). Each group member owns a slice of a keyspace,
// assigned deterministically from the agreed view. Because every member
// sees the same sequence of views, the shard map is consistent without any
// extra coordination: membership agreement is doing all the work.
package main

import (
	"fmt"
	"log"
	"time"

	"procgroup"
)

const shards = 12

// shardMap derives shard ownership from a view: shard i belongs to the
// i-mod-n'th member in seniority order. Any two processes holding the same
// view compute the same map — GMP-3 makes this sound.
func shardMap(v *procgroup.View) map[int]procgroup.ProcID {
	members := v.Members()
	out := make(map[int]procgroup.ProcID, shards)
	for i := 0; i < shards; i++ {
		out[i] = members[i%len(members)]
	}
	return out
}

func describe(v *procgroup.View) {
	owners := shardMap(v)
	counts := map[procgroup.ProcID]int{}
	for _, owner := range owners {
		counts[owner]++
	}
	fmt.Printf("  view v%d with %d members — shard load:", v.Version(), v.Size())
	for _, m := range v.Members() {
		fmt.Printf("  %v×%d", m, counts[m])
	}
	fmt.Println()
}

func main() {
	group := procgroup.StartGroup(procgroup.GroupOptions{
		N:              4,
		HeartbeatEvery: 10 * time.Millisecond,
		SuspectAfter:   60 * time.Millisecond,
	})
	defer group.Stop()

	v, err := group.WaitConverged(5 * time.Second)
	if err != nil {
		log.Fatalf("bootstrap: %v", err)
	}
	fmt.Println("monitor group up; initial shard assignment:")
	describe(v)

	fmt.Println("\np3 fails — the group agrees on its exclusion and every survivor rebalances identically:")
	group.Kill(procgroup.Named("p3"))
	v, err = group.WaitConverged(10 * time.Second)
	if err != nil {
		log.Fatalf("exclusion: %v", err)
	}
	describe(v)

	fmt.Println("\na replacement joins — the coordinator admits it and shards spread again:")
	group.Join(procgroup.Named("p5"), procgroup.Named("p1"))
	v, err = group.WaitConverged(10 * time.Second)
	if err != nil {
		log.Fatalf("join: %v", err)
	}
	describe(v)

	fmt.Println("\nper-process shard maps (computed independently, provably identical):")
	for _, p := range group.Running() {
		pv := group.ViewOf(p)
		if pv == nil {
			continue
		}
		owners := shardMap(pv)
		fmt.Printf("  %v sees shard0→%v shard1→%v shard2→%v …\n", p, owners[0], owners[1], owners[2])
	}
}
