// Kvstore: a replicated key-value store on top of the process group —
// the paper's machinery put to work. Every member hosts a KV replica;
// writes enter at any member, ride the view-synchronous broadcast layer
// into one total order under group commit (batched sequencing, coalesced
// acks), and are acknowledged only at stability, so an acked write
// survives the crash we then inflict on the write's own entry point
// (which is also the order's sequencer). Reads are served locally behind
// the stability fence — no total-order traffic — and stay linearizable.
package main

import (
	"fmt"
	"log"
	"time"

	"procgroup"
)

func main() {
	kv := procgroup.NewReplicatedKV().WithBatching(
		procgroup.BatchConfig{MaxEntries: 16},
		procgroup.AckConfig{Every: 16},
	)
	group := procgroup.StartGroup(procgroup.GroupOptions{
		N:              5,
		HeartbeatEvery: 10 * time.Millisecond,
		SuspectAfter:   60 * time.Millisecond,
		App:            kv.Factory(),
	})
	defer group.Stop()

	v, err := group.WaitConverged(5 * time.Second)
	if err != nil {
		log.Fatalf("bootstrap: %v", err)
	}
	fmt.Printf("group up: %v  (sequencer %v)\n\n", v, v.Mgr())

	// Writes through different members still form one total order.
	for i, p := range group.Running() {
		key := fmt.Sprintf("color%d", i)
		if _, err := kv.Propose(p, procgroup.KVPut(key, "green"), 5*time.Second); err != nil {
			log.Fatalf("write via %v: %v", p, err)
		}
		fmt.Printf("PUT %s=green  (entered at %v, acked at stability)\n", key, p)
	}

	// Kill the sequencer: the view change flushes, re-sequences the
	// survivors' tails, and every acked write above is still there.
	seq := v.Mgr()
	fmt.Printf("\n--- killing the sequencer %v ---\n", seq)
	group.Kill(seq)
	if _, err := group.WaitConverged(15 * time.Second); err != nil {
		log.Fatalf("after killing %v: %v", seq, err)
	}

	// Local reads: each executes on the survivor behind the stability
	// fence instead of entering the total order.
	survivor := group.Running()[0]
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("color%d", i)
		res, err := kv.Read(survivor, procgroup.KVGet(key), procgroup.ReadLocal, 10*time.Second)
		if err != nil {
			log.Fatalf("read %s: %v", key, err)
		}
		mode := "sequenced"
		if res.Local {
			mode = "local, stability-fenced"
		}
		fmt.Printf("GET %s = %q  (%s)\n", key, res.Resp, mode)
	}

	if err := kv.CheckTotalOrder(group.Running()); err != nil {
		log.Fatalf("certification: %v", err)
	}
	st := kv.Stats()
	fmt.Printf("\ncertified: all replicas applied the same total order\n")
	fmt.Printf("group commit: %d pub batches, %d seqd batches, %d acks sent (%d suppressed), %d local reads\n",
		st.Broadcast.PubBatches, st.Broadcast.SeqdBatches,
		st.Broadcast.AcksSent, st.Broadcast.AcksSuppressed, st.LocalReads)
}
