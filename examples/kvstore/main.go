// Kvstore: a replicated key-value store on top of the process group —
// the paper's machinery put to work. Every member hosts a KV replica;
// writes enter at any member, ride the view-synchronous broadcast layer
// into one total order, and are acknowledged only at stability, so an
// acked write survives the crash we then inflict on the write's own
// entry point (which is also the order's sequencer).
package main

import (
	"fmt"
	"log"
	"time"

	"procgroup"
)

func main() {
	kv := procgroup.NewReplicatedKV()
	group := procgroup.StartGroup(procgroup.GroupOptions{
		N:              5,
		HeartbeatEvery: 10 * time.Millisecond,
		SuspectAfter:   60 * time.Millisecond,
		App:            kv.Factory(),
	})
	defer group.Stop()

	v, err := group.WaitConverged(5 * time.Second)
	if err != nil {
		log.Fatalf("bootstrap: %v", err)
	}
	fmt.Printf("group up: %v  (sequencer %v)\n\n", v, v.Mgr())

	// Writes through different members still form one total order.
	for i, p := range group.Running() {
		key := fmt.Sprintf("color%d", i)
		if _, err := kv.Propose(p, procgroup.KVPut(key, "green"), 5*time.Second); err != nil {
			log.Fatalf("write via %v: %v", p, err)
		}
		fmt.Printf("PUT %s=green  (entered at %v, acked at stability)\n", key, p)
	}

	// Kill the sequencer: the view change flushes, re-sequences the
	// survivors' tails, and every acked write above is still there.
	seq := v.Mgr()
	fmt.Printf("\n--- killing the sequencer %v ---\n", seq)
	group.Kill(seq)
	if _, err := group.WaitConverged(15 * time.Second); err != nil {
		log.Fatalf("after killing %v: %v", seq, err)
	}

	survivor := group.Running()[0]
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("color%d", i)
		val, err := kv.Propose(survivor, procgroup.KVGet(key), 10*time.Second)
		if err != nil {
			log.Fatalf("read %s: %v", key, err)
		}
		fmt.Printf("GET %s = %q\n", key, val)
	}

	if err := kv.CheckTotalOrder(group.Running()); err != nil {
		log.Fatalf("certification: %v", err)
	}
	fmt.Println("\ncertified: all replicas applied the same total order")
}
