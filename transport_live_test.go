package procgroup_test

// End-to-end tests of the live group over the pluggable transports: the
// paper's deployment target (§2.1's asynchronous network of reliable FIFO
// channels) realized with real TCP sockets on loopback, with the agreed
// view sequence verified by ViewWatcher.

import (
	"testing"
	"time"

	"procgroup"
)

// tcpGroup boots n live nodes over real TCP loopback sockets.
func tcpGroup(n int) *procgroup.Group {
	return procgroup.StartGroup(procgroup.GroupOptions{
		N:              n,
		HeartbeatEvery: 15 * time.Millisecond,
		SuspectAfter:   150 * time.Millisecond,
		Transport:      procgroup.NewTCPTransport(),
	})
}

// TestTCPGroupChurnInstallsAgreedViewSequence is the transport tentpole's
// acceptance scenario: a 5-node group over TCP survives a join followed by
// two crashes (one of them the coordinator) and installs one agreed,
// gap-free view sequence, observed through ViewWatcher.
func TestTCPGroupChurnInstallsAgreedViewSequence(t *testing.T) {
	g := tcpGroup(5)
	defer g.Stop()
	w := procgroup.Watch(g)
	defer w.Close()

	if _, err := g.WaitConverged(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	g.Join(procgroup.Named("q1"), procgroup.Named("p2"))
	if _, err := g.WaitConverged(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	g.Kill(procgroup.Named("p5"))
	if _, err := g.WaitConverged(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	g.Kill(procgroup.Named("p1")) // coordinator crash: three-phase reconfiguration
	if _, err := g.WaitConverged(20 * time.Second); err != nil {
		t.Fatal(err)
	}

	// The agreed sequence must arrive gap-free and in order: v0 (5
	// members), v1 (join: 6), v2 (exclusion: 5), v3 (coordinator
	// exclusion: 4).
	wantSizes := []int{5, 6, 5, 4}
	deadline := time.After(10 * time.Second)
	for want := procgroup.Version(0); want <= 3; want++ {
		select {
		case av, ok := <-w.Views():
			if !ok {
				t.Fatal("agreed view stream closed early")
			}
			if av.Ver != want {
				t.Fatalf("agreed sequence has a gap: got v%d, want v%d", av.Ver, want)
			}
			if len(av.Members) != wantSizes[want] {
				t.Errorf("v%d has %d members, want %d (%v)", av.Ver, len(av.Members), wantSizes[want], av.Members)
			}
		case <-deadline:
			t.Fatalf("timed out waiting for agreed view v%d", want)
		}
	}
	cur, ok := w.Current()
	if !ok || cur.Ver != 3 {
		t.Fatalf("Current = %+v, want v3", cur)
	}
	for _, m := range cur.Members {
		if m == procgroup.Named("p1") || m == procgroup.Named("p5") {
			t.Errorf("excluded %v still in final view %v", m, cur.Members)
		}
	}
	if g.Dropped() != 0 {
		t.Errorf("updates stream dropped %d installs with an attached watcher", g.Dropped())
	}
}

// TestGroupOptionsTransportDefaultsToInmem: a nil Transport behaves
// exactly as the seed did — the existing live tests all run through this
// path, so here we only pin that the default converges.
func TestGroupOptionsTransportDefaultsToInmem(t *testing.T) {
	g := procgroup.StartGroup(procgroup.GroupOptions{
		N:              3,
		HeartbeatEvery: 5 * time.Millisecond,
		SuspectAfter:   30 * time.Millisecond,
	})
	defer g.Stop()
	if _, err := g.WaitConverged(5 * time.Second); err != nil {
		t.Fatal(err)
	}
}
