// Benchmarks regenerating the paper's evaluation, one per table/figure of
// DESIGN.md's experiment index. Message counts are exact and deterministic;
// they are reported as custom metrics (msgs, paper_msgs) alongside ns/op,
// which measures the simulator's wall-clock cost for the schedule.
//
// Run with: go test -bench=. -benchmem
package procgroup_test

import (
	"fmt"
	"testing"
	"time"

	"procgroup"
	"procgroup/internal/experiments"
)

// reportPair publishes measured-vs-paper message counts for a bench.
func reportPair(b *testing.B, measured, paper int) {
	b.ReportMetric(float64(measured), "msgs")
	b.ReportMetric(float64(paper), "paper_msgs")
	if measured != paper {
		b.Fatalf("measured %d messages, paper predicts %d", measured, paper)
	}
}

// BenchmarkTable1Scenarios is E1: the four initiation scenarios of Table 1.
func BenchmarkTable1Scenarios(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table1(21)
		if len(rows) != 4 {
			b.Fatal("table 1 incomplete")
		}
		for r, row := range rows {
			if !row.CheckerOK {
				b.Fatalf("row %d violates GMP", r+1)
			}
		}
	}
}

// BenchmarkExclusionTwoPhase is E2: the plain two-phase exclusion, 3n−5
// messages (§7.2 best case 1, Figs. 1–2).
func BenchmarkExclusionTwoPhase(b *testing.B) {
	for _, n := range []int{8, 32, 128} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var m, p int
			for i := 0; i < b.N; i++ {
				m, p = experiments.TwoPhaseCost(n, 1)
			}
			reportPair(b, m, p)
		})
	}
}

// BenchmarkExclusionCompressedStream is E3/E6: n−1 compressed exclusions,
// (n−1)² messages total (§7.2 best case 2).
func BenchmarkExclusionCompressedStream(b *testing.B) {
	for _, n := range []int{8, 16, 32} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var m, p int
			for i := 0; i < b.N; i++ {
				m, p = experiments.CompressedStreamCost(n, 1)
			}
			reportPair(b, m, p)
		})
	}
}

// BenchmarkExclusionPlainStream is the E6 comparison arm: the same stream
// without compression costs Σ(3m−5).
func BenchmarkExclusionPlainStream(b *testing.B) {
	for _, n := range []int{8, 16, 32} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var m, p int
			for i := 0; i < b.N; i++ {
				m, p = experiments.PlainStreamCost(n, 1)
			}
			reportPair(b, m, p)
		})
	}
}

// BenchmarkReconfiguration is E4: one coordinator replacement, 5n−9
// messages (§7.2 best case 3, Figs. 5–6).
func BenchmarkReconfiguration(b *testing.B) {
	for _, n := range []int{8, 32, 128} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var m, p int
			for i := 0; i < b.N; i++ {
				m, p = experiments.ReconfigCost(n, 1)
			}
			reportPair(b, m, p)
		})
	}
}

// BenchmarkWorstCaseReconfigurationChain is E5: τ successive failed
// reconfigurations, O(n²) messages (§7.2 worst case).
func BenchmarkWorstCaseReconfigurationChain(b *testing.B) {
	for _, n := range []int{8, 16, 32} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var msgs int
			for i := 0; i < b.N; i++ {
				m, _, err := experiments.WorstCaseChain(n, 1)
				if err != nil {
					b.Fatal(err)
				}
				msgs = m
			}
			b.ReportMetric(float64(msgs), "msgs")
			b.ReportMetric(float64(n*n), "n²")
		})
	}
}

// BenchmarkFigure3Recovery is E7: repair after a commit interrupted by the
// coordinator's crash.
func BenchmarkFigure3Recovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if v := experiments.Figure3(22); !v.CheckerOK {
			b.Fatalf("figure 3 run violated GMP: %s", v.Detail)
		}
	}
}

// BenchmarkFigure7InvisibleCommit is E9: detection and propagation of a
// commit whose only witnesses died.
func BenchmarkFigure7InvisibleCommit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if v := experiments.Figure7(24); !v.CheckerOK {
			b.Fatalf("figure 7 run violated GMP: %s", v.Detail)
		}
	}
}

// BenchmarkClaim71OnePhase is E11: the one-phase strawman must violate
// GMP-3 on the cross-suspicion schedule.
func BenchmarkClaim71OnePhase(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if v := experiments.Claim71(31); v.CheckerOK {
			b.Fatal("one-phase protocol unexpectedly satisfied GMP")
		}
	}
}

// BenchmarkClaim72TwoPhase is E10: two-phase reconfiguration fails on the
// Figure 11 schedule that three-phase survives.
func BenchmarkClaim72TwoPhase(b *testing.B) {
	for i := 0; i < b.N; i++ {
		two, three := experiments.Claim72(51)
		if two.CheckerOK {
			b.Fatal("two-phase reconfiguration unexpectedly satisfied GMP")
		}
		if !three.CheckerOK {
			b.Fatal("three-phase control violated GMP")
		}
	}
}

// BenchmarkSymmetricBaseline is E12: the Bruso-style symmetric protocol
// pays (n−1)² messages per exclusion where GMP pays 3n−5.
func BenchmarkSymmetricBaseline(b *testing.B) {
	for _, n := range []int{8, 32, 128} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var m, p int
			for i := 0; i < b.N; i++ {
				m, p = experiments.SymmetricCost(n, 1)
			}
			reportPair(b, m, p)
			gmp := 3*n - 5
			b.ReportMetric(float64(m)/float64(gmp), "×GMP")
		})
	}
}

// BenchmarkOnlineChurn is E13: the fully online join/exclusion stream.
func BenchmarkOnlineChurn(b *testing.B) {
	var msgs int
	for i := 0; i < b.N; i++ {
		v, m := experiments.Churn(61)
		if !v.CheckerOK {
			b.Fatalf("churn run violated GMP: %s", v.Detail)
		}
		msgs = m
	}
	b.ReportMetric(float64(msgs), "msgs")
}

// BenchmarkCutConstruction is E14: building and verifying the Theorem 6.1
// cut structure over a busy trace.
func BenchmarkCutConstruction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if v := experiments.CutAnalysis(71); !v.CheckerOK {
			b.Fatalf("cut analysis failed: %s", v.Detail)
		}
	}
}

// BenchmarkLiveExclusionLatency measures end-to-end failure-to-agreement
// latency on the live goroutine runtime (no paper analogue; the authors'
// testbed is our simulator, this is the deployment-shaped number).
func BenchmarkLiveExclusionLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := procgroup.StartGroup(procgroup.GroupOptions{
			N:              5,
			HeartbeatEvery: 2 * time.Millisecond,
			SuspectAfter:   12 * time.Millisecond,
		})
		if _, err := g.WaitConverged(10 * time.Second); err != nil {
			g.Stop()
			b.Fatal(err)
		}
		start := time.Now()
		g.Kill(procgroup.Named("p5"))
		if _, err := g.WaitConverged(10 * time.Second); err != nil {
			g.Stop()
			b.Fatal(err)
		}
		b.ReportMetric(float64(time.Since(start).Microseconds()), "µs/exclusion")
		g.Stop()
	}
}

// BenchmarkSimulatorThroughput measures raw simulator speed: scheduler
// steps per second over a reconfiguration-heavy schedule.
func BenchmarkSimulatorThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sim := procgroup.NewSim(procgroup.SimOptions{N: 32, Seed: int64(i), Config: procgroup.DefaultConfig()})
		procs := sim.Initial()
		sim.CrashAt(procs[0], 50)
		sim.CrashAt(procs[31], 400)
		sim.Run()
	}
}

// BenchmarkTimeToViewQuiescence measures the live runtime's end-to-end
// view-agreement latency per transport: boot to the initial agreed view,
// then a member crash to the post-exclusion agreed view. It is the perf
// baseline for transport work — inmem is the floor (function-call
// delivery), tcp pays the codec and loopback-socket tax on every channel.
func BenchmarkTimeToViewQuiescence(b *testing.B) {
	transports := []struct {
		name string
		make func() procgroup.Transport
	}{
		{"inmem", func() procgroup.Transport { return procgroup.NewInmemTransport() }},
		{"tcp", func() procgroup.Transport { return procgroup.NewTCPTransport() }},
	}
	for _, tr := range transports {
		b.Run(tr.name, func(b *testing.B) {
			var bootTotal, exclTotal time.Duration
			for i := 0; i < b.N; i++ {
				start := time.Now()
				g := procgroup.StartGroup(procgroup.GroupOptions{
					N:              5,
					HeartbeatEvery: 2 * time.Millisecond,
					SuspectAfter:   20 * time.Millisecond,
					Transport:      tr.make(),
				})
				if _, err := g.WaitConverged(10 * time.Second); err != nil {
					g.Stop()
					b.Fatal(err)
				}
				bootTotal += time.Since(start)
				start = time.Now()
				g.Kill(procgroup.Named("p5"))
				if _, err := g.WaitConverged(10 * time.Second); err != nil {
					g.Stop()
					b.Fatal(err)
				}
				exclTotal += time.Since(start)
				g.Stop()
			}
			b.ReportMetric(float64(bootTotal.Microseconds())/float64(b.N), "µs/boot-quiesce")
			b.ReportMetric(float64(exclTotal.Microseconds())/float64(b.N), "µs/excl-quiesce")
		})
	}
}
