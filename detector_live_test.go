package procgroup_test

// Public-API coverage of detector selection and the chaos harness: a live
// group under the adaptive φ-accrual detector, over a chaos-degraded
// transport, must exclude a killed member — everything reachable from the
// root package alone, as an application would wire it.

import (
	"testing"
	"time"

	"procgroup"
)

func TestAccrualDetectorOverChaosTransportFacade(t *testing.T) {
	chaos := procgroup.NewChaosTransport(procgroup.NewInmemTransport(), procgroup.ChaosTransportOptions{
		Seed: 1,
		Default: procgroup.ChaosLink{
			Jitter:     5 * time.Millisecond,
			BeaconLoss: 0.05,
		},
	})
	g := procgroup.StartGroup(procgroup.GroupOptions{
		N:              5,
		HeartbeatEvery: 5 * time.Millisecond,
		// Wide σ floor: φ = 8 sits ~5.6σ past the mean, and -race
		// slowdowns plus the 5ms chaos jitter need ~30ms of patience
		// before a stall may be read as death.
		Detector: procgroup.NewAccrualDetector(procgroup.AccrualDetectorOptions{
			Phi:       8,
			MinStdDev: 5 * time.Millisecond,
			Fallback:  100 * time.Millisecond,
		}),
		Transport: chaos,
	})
	defer g.Stop()

	if _, err := g.WaitConverged(10 * time.Second); err != nil {
		t.Fatalf("bootstrap under chaos: %v", err)
	}
	victim := procgroup.Named("p5")
	g.Kill(victim)
	v, err := g.WaitConverged(15 * time.Second)
	if err != nil {
		t.Fatalf("exclusion under chaos: %v", err)
	}
	if v.Has(victim) {
		t.Errorf("killed member still in %v", v)
	}
	if g.TransportStats().ChaosInjected == 0 {
		t.Error("chaos transport injected no drops despite 5% beacon loss")
	}

	// Runtime reconfiguration: partition the new coordinator's link to
	// one member asymmetrically and heal it; the group must stay converged
	// afterwards (a short half-open glitch is below everyone's patience).
	chaos.Partition(procgroup.Named("p1"), procgroup.Named("p2"))
	time.Sleep(10 * time.Millisecond)
	chaos.Heal(procgroup.Named("p1"), procgroup.Named("p2"))
	if _, err := g.WaitConverged(10 * time.Second); err != nil {
		t.Fatalf("after partition heal: %v", err)
	}
}
