// Package procgroup is a from-scratch implementation of the group
// membership protocol of Ricciardi & Birman, "Using Process Groups to
// Implement Failure Detection in Asynchronous Environments" (Cornell
// TR 91-1188 / PODC 1991): an asymmetric, coordinator-driven membership
// service that turns unreliable failure suspicions into an agreed, totally
// ordered sequence of views — the mechanism underlying ISIS-style virtual
// synchrony.
//
// The package exposes two ways to run the protocol:
//
//   - StartGroup boots a live group: one goroutine per process, a
//     pluggable transport, and a pluggable heartbeat failure detector.
//     This is the deployment shape for applications.
//
//   - NewSim builds a deterministic simulation on virtual time with exact
//     message accounting, adversarial failure injection (crashes in
//     mid-broadcast, spurious suspicions, partitions) and a GMP property
//     checker. This is the shape for tests, benchmarks, and reproducing
//     the paper's evaluation.
//
// Three live-group dimensions are selectable per group:
//
//   - Transport (GroupOptions.Transport): in-process delivery (default),
//     real TCP sockets (NewTCPTransport), a UDP datagram plane
//     (NewUDPTransport), the two-plane wire that keeps beacons on UDP
//     and protocol traffic on a stream (NewUDPBeaconTransport — the
//     failure detector's samples can no longer queue behind bulk data),
//     a lossy datagram link repaired by the alternating-bit protocol
//     (NewLossyTransport), or any of those degraded by the chaos harness
//     (NewChaosTransport — per-link delay, jitter, beacon loss, burst
//     outages, asymmetric partitions).
//
//   - Failure detection (GroupOptions.Detector): the classic fixed
//     silence threshold (NewFixedTimeoutDetector, the default via
//     GroupOptions.SuspectAfter) or the adaptive φ-accrual detector
//     (NewAccrualDetector), which fits per-peer arrival statistics so
//     detection latency tracks measured link behavior — the paper's §2.2
//     observation that agreement time is detector-bound, attacked at the
//     detector.
//
//   - Monitoring topology (GroupOptions.Topology): all-to-all monitoring
//     (NewFullTopology, the default) or ring-k (NewRingTopology), where
//     each member watches only its k rank-successors — F1 never required
//     all-to-all observation, so beacon traffic and TCP connection count
//     drop from O(n²) to O(n·k), with suspicions relayed around the ring
//     to whoever needs them (DESIGN.md §8).
//
// See README.md for a quickstart, DESIGN.md for the system inventory and
// EXPERIMENTS.md for the paper-versus-measured record of every table and
// figure (E16 covers the detector A/B under chaos, E17 the topology
// scaling sweep).
package procgroup
