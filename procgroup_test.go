package procgroup_test

// Tests of the public API surface: the simulation facade, the live group
// facade, determinism of seeded runs, and the re-exported label sets.

import (
	"testing"
	"time"

	"procgroup"
)

func TestSimFacadeEndToEnd(t *testing.T) {
	sim := procgroup.NewSim(procgroup.SimOptions{N: 5, Seed: 3, Config: procgroup.DefaultConfig()})
	procs := sim.Initial()
	sim.CrashAt(procs[0], 50)
	sim.Run()

	v, err := sim.StableView()
	if err != nil {
		t.Fatal(err)
	}
	if v.Has(procs[0]) || v.Size() != 4 {
		t.Errorf("stable view %v", v)
	}
	if rep := sim.Check(); !rep.OK() {
		t.Errorf("checker: %v", rep)
	}
	if sim.Messages(procgroup.ReconfigLabels...) != 5*5-9 {
		t.Errorf("reconfig messages = %d, want %d", sim.Messages(procgroup.ReconfigLabels...), 5*5-9)
	}
}

func TestSeededRunsAreBitIdentical(t *testing.T) {
	run := func() ([]string, int) {
		sim := procgroup.NewSim(procgroup.SimOptions{N: 6, Seed: 99, Config: procgroup.DefaultConfig()})
		procs := sim.Initial()
		sim.CrashAt(procs[0], 40)
		sim.CrashAt(procs[5], 300)
		sim.JoinAt(procgroup.Named("j1"), procs[1], 700)
		sim.Run()
		var evs []string
		for _, e := range sim.Rec.Events() {
			evs = append(evs, e.String())
		}
		return evs, sim.Messages()
	}
	evA, msgA := run()
	evB, msgB := run()
	if msgA != msgB {
		t.Fatalf("message totals diverged: %d vs %d", msgA, msgB)
	}
	if len(evA) != len(evB) {
		t.Fatalf("event counts diverged: %d vs %d", len(evA), len(evB))
	}
	for i := range evA {
		if evA[i] != evB[i] {
			t.Fatalf("event %d diverged:\n%s\n%s", i, evA[i], evB[i])
		}
	}
}

func TestProcessesAndNamed(t *testing.T) {
	ps := procgroup.Processes(3)
	if len(ps) != 3 || ps[0] != procgroup.Named("p1") || ps[2] != procgroup.Named("p3") {
		t.Errorf("Processes(3) = %v", ps)
	}
}

func TestDefaultConfigIsFinalAlgorithm(t *testing.T) {
	cfg := procgroup.DefaultConfig()
	if !cfg.Compression || !cfg.MajorityCheck || cfg.ReconfigWait <= 0 {
		t.Errorf("DefaultConfig = %+v, want compression+majority+timeout", cfg)
	}
	if cfg.TwoPhaseReconfig {
		t.Error("DefaultConfig must never enable the Claim 7.2 strawman")
	}
}

func TestLabelSetsDisjointAndComplete(t *testing.T) {
	seen := map[string]bool{}
	for _, l := range procgroup.ExclusionLabels {
		seen[l] = true
	}
	for _, l := range procgroup.ReconfigLabels {
		if seen[l] {
			t.Errorf("label %q in both exclusion and reconfiguration sets", l)
		}
	}
	if len(procgroup.ProtocolLabels) != len(procgroup.ExclusionLabels)+len(procgroup.ReconfigLabels) {
		t.Error("ProtocolLabels is not the union of the two sets")
	}
}

func TestLiveFacade(t *testing.T) {
	g := procgroup.StartGroup(procgroup.GroupOptions{
		N:              3,
		HeartbeatEvery: 5 * time.Millisecond,
		SuspectAfter:   30 * time.Millisecond,
	})
	defer g.Stop()
	v, err := g.WaitConverged(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if v.Size() != 3 || v.Mgr() != procgroup.Named("p1") {
		t.Errorf("initial view %v", v)
	}
	g.Kill(procgroup.Named("p3"))
	v, err = g.WaitConverged(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if v.Size() != 2 {
		t.Errorf("view after kill %v", v)
	}
}

func TestRingTopologyFacade(t *testing.T) {
	// The root API end to end under ring-k monitoring: boot, kill the
	// coordinator (whose death only its ring predecessors observe), and
	// converge on the reconfigured view.
	g := procgroup.StartGroup(procgroup.GroupOptions{
		N:              5,
		HeartbeatEvery: 5 * time.Millisecond,
		SuspectAfter:   30 * time.Millisecond,
		Topology:       procgroup.NewRingTopology(2),
	})
	defer g.Stop()
	if _, err := g.WaitConverged(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	g.Kill(procgroup.Named("p1"))
	v, err := g.WaitConverged(15 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if v.Has(procgroup.Named("p1")) || v.Mgr() != procgroup.Named("p2") {
		t.Errorf("view after coordinator kill: %v", v)
	}
}
