package procgroup_test

import (
	"testing"
	"time"

	"procgroup"
)

func TestViewWatcherEmitsAgreedSequence(t *testing.T) {
	g := procgroup.StartGroup(procgroup.GroupOptions{
		N:              4,
		HeartbeatEvery: 5 * time.Millisecond,
		SuspectAfter:   30 * time.Millisecond,
	})
	defer g.Stop()
	w := procgroup.Watch(g)
	defer w.Close()

	if _, err := g.WaitConverged(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	g.Kill(procgroup.Named("p4"))
	if _, err := g.WaitConverged(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	g.Kill(procgroup.Named("p1"))
	if _, err := g.WaitConverged(15 * time.Second); err != nil {
		t.Fatal(err)
	}

	// The watcher must deliver v0, v1, v2 exactly once each, in order.
	deadline := time.After(5 * time.Second)
	for want := procgroup.Version(0); want <= 2; want++ {
		select {
		case av, ok := <-w.Views():
			if !ok {
				t.Fatal("stream closed early")
			}
			if av.Ver != want {
				t.Fatalf("got v%d, want v%d (order/dedup broken)", av.Ver, want)
			}
		case <-deadline:
			t.Fatalf("timed out waiting for v%d", want)
		}
	}
	cur, ok := w.Current()
	if !ok || cur.Ver != 2 || len(cur.Members) != 2 {
		t.Errorf("Current = %+v, want v2 with 2 members", cur)
	}
}

func TestViewWatcherCloseIsSafe(t *testing.T) {
	g := procgroup.StartGroup(procgroup.GroupOptions{
		N:              3,
		HeartbeatEvery: 5 * time.Millisecond,
		SuspectAfter:   30 * time.Millisecond,
	})
	defer g.Stop()
	w := procgroup.Watch(g)
	if _, err := g.WaitConverged(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	w.Close()
	w.Close() // idempotent
	if _, ok := <-w.Views(); ok {
		// Draining remaining buffered views is fine; eventually closes.
		for range w.Views() {
		}
	}
}
