package procgroup_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"procgroup"
)

func TestViewWatcherEmitsAgreedSequence(t *testing.T) {
	g := procgroup.StartGroup(procgroup.GroupOptions{
		N:              4,
		HeartbeatEvery: 5 * time.Millisecond,
		SuspectAfter:   30 * time.Millisecond,
	})
	defer g.Stop()
	w := procgroup.Watch(g)
	defer w.Close()

	if _, err := g.WaitConverged(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	g.Kill(procgroup.Named("p4"))
	if _, err := g.WaitConverged(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	g.Kill(procgroup.Named("p1"))
	if _, err := g.WaitConverged(15 * time.Second); err != nil {
		t.Fatal(err)
	}

	// The watcher must deliver v0, v1, v2 exactly once each, in order.
	deadline := time.After(5 * time.Second)
	for want := procgroup.Version(0); want <= 2; want++ {
		select {
		case av, ok := <-w.Views():
			if !ok {
				t.Fatal("stream closed early")
			}
			if av.Ver != want {
				t.Fatalf("got v%d, want v%d (order/dedup broken)", av.Ver, want)
			}
		case <-deadline:
			t.Fatalf("timed out waiting for v%d", want)
		}
	}
	cur, ok := w.Current()
	if !ok || cur.Ver != 2 || len(cur.Members) != 2 {
		t.Errorf("Current = %+v, want v2 with 2 members", cur)
	}
}

func TestViewWatcherCloseIsSafe(t *testing.T) {
	g := procgroup.StartGroup(procgroup.GroupOptions{
		N:              3,
		HeartbeatEvery: 5 * time.Millisecond,
		SuspectAfter:   30 * time.Millisecond,
	})
	defer g.Stop()
	w := procgroup.Watch(g)
	if _, err := g.WaitConverged(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	w.Close()
	w.Close() // idempotent
	if _, ok := <-w.Views(); ok {
		// Draining remaining buffered views is fine; eventually closes.
		for range w.Views() {
		}
	}
}

// members returns the deterministic membership every process reports for
// version v — per GMP-2/GMP-3 all processes report identical composition,
// which is what the watcher's first-report-wins dedup relies on.
func membersFor(v int) []procgroup.ProcID {
	return procgroup.Processes(v%5 + 1)
}

// TestWatchUpdatesConcurrentInstallStreams merges per-process install
// streams produced by concurrent goroutines — each process reporting every
// version in its own order of progress — and asserts the watcher condenses
// them to exactly one emission per version with the agreed composition.
func TestWatchUpdatesConcurrentInstallStreams(t *testing.T) {
	const procs, views = 8, 40
	updates := make(chan procgroup.ViewUpdate, 16)
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			id := procgroup.Named(fmt.Sprintf("p%d", p+1))
			for v := 0; v < views; v++ {
				updates <- procgroup.ViewUpdate{Proc: id, Ver: procgroup.Version(v), Members: membersFor(v)}
			}
		}(p)
	}
	go func() {
		wg.Wait()
		close(updates)
	}()

	w := procgroup.WatchUpdates(updates)
	defer w.Close()
	emitted := make(map[procgroup.Version]int)
	for av := range w.Views() {
		emitted[av.Ver]++
		if want := membersFor(int(av.Ver)); len(av.Members) != len(want) {
			t.Errorf("v%d emitted with %d members, want %d", av.Ver, len(av.Members), len(want))
		}
	}
	if len(emitted) != views {
		t.Errorf("emitted %d distinct versions, want %d", len(emitted), views)
	}
	for v, n := range emitted {
		if n != 1 {
			t.Errorf("v%d emitted %d times, want exactly once", v, n)
		}
	}
	if cur, ok := w.Current(); !ok || cur.Ver != views-1 {
		t.Errorf("Current = %+v, want v%d", cur, views-1)
	}
}

// TestWatchUpdatesOutOfOrderAndDuplicates feeds first reports out of
// version order with duplicates interleaved: every version is emitted once
// on its first report, duplicates never re-emit, and Current tracks the
// highest version seen rather than the latest arrival.
func TestWatchUpdatesOutOfOrderAndDuplicates(t *testing.T) {
	updates := make(chan procgroup.ViewUpdate)
	w := procgroup.WatchUpdates(updates)
	defer w.Close()

	feed := []procgroup.Version{5, 3, 5, 4, 3, 6, 4, 5}
	for _, v := range feed {
		updates <- procgroup.ViewUpdate{Proc: procgroup.Named("p1"), Ver: v, Members: membersFor(int(v))}
	}
	close(updates)

	var got []procgroup.Version
	for av := range w.Views() {
		got = append(got, av.Ver)
	}
	want := []procgroup.Version{5, 3, 4, 6} // first-report order, deduped
	if len(got) != len(want) {
		t.Fatalf("emitted %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("emitted %v, want %v", got, want)
		}
	}
	if cur, ok := w.Current(); !ok || cur.Ver != 6 {
		t.Errorf("Current = %+v, want v6", cur)
	}
}

// TestWatchUpdatesCloseWhileSending closes the watcher while producers are
// still hammering the stream (with the same non-blocking send the live
// cluster uses) and while the emission buffer is saturated with no reader:
// Close must return promptly in both regimes.
func TestWatchUpdatesCloseWhileSending(t *testing.T) {
	updates := make(chan procgroup.ViewUpdate, 1)
	w := procgroup.WatchUpdates(updates)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			id := procgroup.Named(fmt.Sprintf("p%d", p+1))
			for v := 0; ; v++ {
				select {
				case <-stop:
					return
				default:
				}
				// Non-blocking, like Cluster.RecordInstall's publish.
				select {
				case updates <- procgroup.ViewUpdate{Proc: id, Ver: procgroup.Version(v % 500), Members: membersFor(v)}:
				default:
				}
			}
		}(p)
	}

	// Let the 64-slot Views buffer fill with nobody draining, so ingest
	// is blocked on emission when Close arrives.
	time.Sleep(20 * time.Millisecond)
	done := make(chan struct{})
	go func() {
		w.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close blocked while senders were active")
	}
	close(stop)
	wg.Wait()
	// The stream must be closed (after draining any buffered emissions).
	for range w.Views() {
	}
}
