package procgroup

import (
	"sync"

	"procgroup/internal/ids"
	"procgroup/internal/member"
)

// ViewWatcher condenses a live group's per-process install stream into the
// agreed view sequence: each version is emitted exactly once, in order,
// the first time any member reports installing it. GMP-2/GMP-3 guarantee
// that every process's version-x view is identical, which is what makes
// "first report wins" sound — the watcher is the programmatic form of the
// paper's "responses to queries on Memb(p,c) … reflect an exact system
// view composition" (§2.3).
type ViewWatcher struct {
	mu      sync.Mutex
	seen    map[member.Version][]ids.ProcID
	highest member.Version
	closed  bool
	out     chan AgreedView
	stop    chan struct{}
	done    chan struct{}
}

// AgreedView is one entry of the agreed view sequence.
type AgreedView struct {
	Ver     Version
	Members []ProcID
}

// Watch starts consuming the group's update stream. The watcher owns the
// stream until Close; emitted views arrive on Views() in version order.
func Watch(g *Group) *ViewWatcher { return WatchUpdates(g.Updates()) }

// WatchUpdates builds a watcher over any install stream — a live group's
// Updates(), or a merged stream from several sources. The watcher drains
// updates until the channel closes or Close is called.
func WatchUpdates(updates <-chan ViewUpdate) *ViewWatcher {
	w := &ViewWatcher{
		seen:    make(map[member.Version][]ids.ProcID),
		highest: -1,
		out:     make(chan AgreedView, 64),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	go w.run(updates)
	return w
}

func (w *ViewWatcher) run(updates <-chan ViewUpdate) {
	defer close(w.done)
	defer close(w.out)
	for {
		select {
		case <-w.stop:
			return
		case u, ok := <-updates:
			if !ok {
				return
			}
			w.ingest(u)
		}
	}
}

func (w *ViewWatcher) ingest(u ViewUpdate) {
	w.mu.Lock()
	_, dup := w.seen[u.Ver]
	if !dup {
		members := make([]ids.ProcID, len(u.Members))
		copy(members, u.Members)
		w.seen[u.Ver] = members
		if u.Ver > w.highest {
			w.highest = u.Ver
		}
	}
	w.mu.Unlock()
	if dup {
		return
	}
	select {
	case w.out <- AgreedView{Ver: u.Ver, Members: u.Members}:
	case <-w.stop:
	}
}

// Views is the agreed view stream. It is closed by Close (or when the
// group's update stream ends).
func (w *ViewWatcher) Views() <-chan AgreedView { return w.out }

// Current returns the highest agreed view seen so far (ok == false before
// the first one).
func (w *ViewWatcher) Current() (AgreedView, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.highest < 0 {
		return AgreedView{}, false
	}
	members := w.seen[w.highest]
	out := make([]ids.ProcID, len(members))
	copy(out, members)
	return AgreedView{Ver: w.highest, Members: out}, true
}

// Close stops the watcher and waits for its goroutine to exit.
func (w *ViewWatcher) Close() {
	w.mu.Lock()
	if !w.closed {
		w.closed = true
		close(w.stop)
	}
	w.mu.Unlock()
	<-w.done
}
