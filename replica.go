package procgroup

import (
	"sync"
	"time"

	"procgroup/internal/broadcast"
	"procgroup/internal/live"
	"procgroup/internal/rsm"
)

// Re-exported replication types (the broadcast/rsm layers above GMP).
type (
	// AppNode is the per-process handle the live runtime hands an
	// application layer: identity, sends to peers, and loop scheduling.
	AppNode = live.AppNode
	// AppHook receives a node's application traffic and view
	// installations on its event loop; set an AppHookFactory on
	// GroupOptions.App to install one per member.
	AppHook = live.AppHook
	// AppHookFactory builds one AppHook per spawned group member.
	AppHookFactory = live.AppHookFactory
	// StateMachine is the deterministic application a Replica replicates.
	StateMachine = rsm.StateMachine
	// Replica is one member's replicated-state-machine endpoint: Propose
	// from any goroutine, acknowledged at stability.
	Replica = rsm.Node
	// ReplicaRecorder captures every order position each replica
	// processes — the raw material of the certification checkers.
	ReplicaRecorder = rsm.Recorder
	// BatchConfig tunes group commit on the broadcast hot path: queued
	// proposals coalesce into one frame, the sequencer assigns contiguous
	// slot ranges, and stability piggybacks on the fan-out. MaxEntries ≤ 1
	// is the unbatched legacy wire.
	BatchConfig = broadcast.BatchConfig
	// AckConfig coalesces the members' cumulative delivery acks (one ack
	// per B entries or T window instead of one per entry).
	AckConfig = broadcast.AckConfig
	// ReadConcern selects a Read's path: ReadLocal (stability-fenced local
	// execution) or ReadLinearizable (sequenced through total order).
	ReadConcern = rsm.ReadConcern
	// ReadResult is one Read's response plus the identity the
	// certification harness correlates it with.
	ReadResult = rsm.ReadResult
	// ReplicaStats is one replica's broadcast and read-path counters;
	// ReplicaSet.Stats sums them across the group.
	ReplicaStats = rsm.Stats
)

// Read-path concerns (see rsm.ReadConcern).
const (
	ReadLocal        = rsm.ReadLocal
	ReadLinearizable = rsm.ReadLinearizable
)

// ReplicaSet hosts one StateMachine replica per group member. Set
// Factory() on GroupOptions.App before StartGroup; afterwards Replica(p)
// returns member p's endpoint — any member accepts writes, the broadcast
// layer funnels them into one view-synchronous total order (DESIGN.md
// §11), and Propose acks only at stability, so an acknowledged command
// survives any crash or view change.
type ReplicaSet struct {
	machine func() StateMachine
	rec     *rsm.Recorder
	batch   BatchConfig
	ack     AckConfig

	mu    sync.Mutex
	nodes map[ProcID]*Replica
}

// NewReplicaSet builds a replica set over any state machine; machine is
// called once per spawned member and must return a fresh instance.
func NewReplicaSet(machine func() StateMachine) *ReplicaSet {
	return &ReplicaSet{
		machine: machine,
		rec:     rsm.NewRecorder(),
		nodes:   make(map[ProcID]*Replica),
	}
}

// NewReplicatedKV builds a replica set over the built-in key-value state
// machine (commands from KVPut and KVGet) — the examples/kvstore and
// gmpbench -exp kv substrate.
func NewReplicatedKV() *ReplicaSet {
	return NewReplicaSet(func() StateMachine { return rsm.NewKV() })
}

// WithBatching sets the group-commit configuration applied to every
// replica spawned after the call (DESIGN.md §12). Call before StartGroup;
// returns the set for chaining.
func (s *ReplicaSet) WithBatching(batch BatchConfig, ack AckConfig) *ReplicaSet {
	s.batch, s.ack = batch, ack
	return s
}

// Factory is the AppHookFactory to set on GroupOptions.App.
func (s *ReplicaSet) Factory() AppHookFactory {
	return func(n AppNode) AppHook {
		node := rsm.NewNode(n, rsm.Config{
			Machine:  s.machine(),
			Recorder: s.rec,
			Broadcast: broadcast.Config{
				Batch: s.batch,
				Ack:   s.ack,
			},
		})
		s.mu.Lock()
		s.nodes[n.ID()] = node
		s.mu.Unlock()
		return node.Hook()
	}
}

// Replica returns member p's endpoint, or nil before p has spawned.
func (s *ReplicaSet) Replica(p ProcID) *Replica {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nodes[p]
}

// Recorder exposes the shared order recorder for the checkers.
func (s *ReplicaSet) Recorder() *ReplicaRecorder { return s.rec }

// Stats sums the broadcast and read-path counters over every replica
// spawned so far — batch-size histogram, acks sent/suppressed, stability
// piggybacks, local vs sequenced reads — the replication analogue of
// Group.TransportStats.
func (s *ReplicaSet) Stats() ReplicaStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	var sum ReplicaStats
	for _, n := range s.nodes {
		sum = sum.Add(n.Stats())
	}
	return sum
}

// CheckTotalOrder certifies the recorded histories: every replica applied
// the same total order (exactly-once, pairwise consistent under joiner
// alignment, per-view slot agreement), and the replicas in alive
// converged on the same final command. Nil means certified.
func (s *ReplicaSet) CheckTotalOrder(alive []ProcID) error {
	return rsm.CheckTotalOrder(s.rec.Sequences(), alive)
}

// KVPut encodes a write command for the built-in KV machine; the Apply
// response echoes the value written.
func KVPut(key, val string) []byte { return rsm.EncodePut(key, val) }

// KVGet encodes a read command; the Apply response is the key's value at
// the command's own position in the total order.
func KVGet(key string) []byte { return rsm.EncodeGet(key) }

// Propose is a convenience wrapper: replicate cmd through member p of the
// set and wait up to timeout for stability. See Replica.Propose for the
// acknowledgement contract.
func (s *ReplicaSet) Propose(p ProcID, cmd []byte, timeout time.Duration) ([]byte, error) {
	n := s.Replica(p)
	if n == nil {
		return nil, rsm.ErrTimeout
	}
	resp, _, err := n.Propose(cmd, timeout)
	return resp, err
}

// Read executes a read-only command at member p under the given concern.
// ReadLocal serves it from p's state behind the stability fence — no
// total-order traffic — falling back to the sequenced path when local
// state is not fenceable; ReadLinearizable always sequences.
func (s *ReplicaSet) Read(p ProcID, cmd []byte, rc ReadConcern, timeout time.Duration) (ReadResult, error) {
	n := s.Replica(p)
	if n == nil {
		return ReadResult{}, rsm.ErrTimeout
	}
	return n.Read(cmd, rc, timeout)
}
