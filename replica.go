package procgroup

import (
	"sync"
	"time"

	"procgroup/internal/live"
	"procgroup/internal/rsm"
)

// Re-exported replication types (the broadcast/rsm layers above GMP).
type (
	// AppNode is the per-process handle the live runtime hands an
	// application layer: identity, sends to peers, and loop scheduling.
	AppNode = live.AppNode
	// AppHook receives a node's application traffic and view
	// installations on its event loop; set an AppHookFactory on
	// GroupOptions.App to install one per member.
	AppHook = live.AppHook
	// AppHookFactory builds one AppHook per spawned group member.
	AppHookFactory = live.AppHookFactory
	// StateMachine is the deterministic application a Replica replicates.
	StateMachine = rsm.StateMachine
	// Replica is one member's replicated-state-machine endpoint: Propose
	// from any goroutine, acknowledged at stability.
	Replica = rsm.Node
	// ReplicaRecorder captures every order position each replica
	// processes — the raw material of the certification checkers.
	ReplicaRecorder = rsm.Recorder
)

// ReplicaSet hosts one StateMachine replica per group member. Set
// Factory() on GroupOptions.App before StartGroup; afterwards Replica(p)
// returns member p's endpoint — any member accepts writes, the broadcast
// layer funnels them into one view-synchronous total order (DESIGN.md
// §11), and Propose acks only at stability, so an acknowledged command
// survives any crash or view change.
type ReplicaSet struct {
	machine func() StateMachine
	rec     *rsm.Recorder

	mu    sync.Mutex
	nodes map[ProcID]*Replica
}

// NewReplicaSet builds a replica set over any state machine; machine is
// called once per spawned member and must return a fresh instance.
func NewReplicaSet(machine func() StateMachine) *ReplicaSet {
	return &ReplicaSet{
		machine: machine,
		rec:     rsm.NewRecorder(),
		nodes:   make(map[ProcID]*Replica),
	}
}

// NewReplicatedKV builds a replica set over the built-in key-value state
// machine (commands from KVPut and KVGet) — the examples/kvstore and
// gmpbench -exp kv substrate.
func NewReplicatedKV() *ReplicaSet {
	return NewReplicaSet(func() StateMachine { return rsm.NewKV() })
}

// Factory is the AppHookFactory to set on GroupOptions.App.
func (s *ReplicaSet) Factory() AppHookFactory {
	return func(n AppNode) AppHook {
		node := rsm.NewNode(n, rsm.Config{Machine: s.machine(), Recorder: s.rec})
		s.mu.Lock()
		s.nodes[n.ID()] = node
		s.mu.Unlock()
		return node.Hook()
	}
}

// Replica returns member p's endpoint, or nil before p has spawned.
func (s *ReplicaSet) Replica(p ProcID) *Replica {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nodes[p]
}

// Recorder exposes the shared order recorder for the checkers.
func (s *ReplicaSet) Recorder() *ReplicaRecorder { return s.rec }

// CheckTotalOrder certifies the recorded histories: every replica applied
// the same total order (exactly-once, pairwise consistent under joiner
// alignment, per-view slot agreement), and the replicas in alive
// converged on the same final command. Nil means certified.
func (s *ReplicaSet) CheckTotalOrder(alive []ProcID) error {
	return rsm.CheckTotalOrder(s.rec.Sequences(), alive)
}

// KVPut encodes a write command for the built-in KV machine; the Apply
// response echoes the value written.
func KVPut(key, val string) []byte { return rsm.EncodePut(key, val) }

// KVGet encodes a read command; the Apply response is the key's value at
// the command's own position in the total order.
func KVGet(key string) []byte { return rsm.EncodeGet(key) }

// Propose is a convenience wrapper: replicate cmd through member p of the
// set and wait up to timeout for stability. See Replica.Propose for the
// acknowledgement contract.
func (s *ReplicaSet) Propose(p ProcID, cmd []byte, timeout time.Duration) ([]byte, error) {
	n := s.Replica(p)
	if n == nil {
		return nil, rsm.ErrTimeout
	}
	resp, _, err := n.Propose(cmd, timeout)
	return resp, err
}
