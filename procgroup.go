package procgroup

import (
	"time"

	"procgroup/internal/check"
	"procgroup/internal/core"
	"procgroup/internal/fd"
	"procgroup/internal/ids"
	"procgroup/internal/live"
	"procgroup/internal/member"
	"procgroup/internal/scenario"
	"procgroup/internal/topology"
	"procgroup/internal/transport"
)

// Re-exported identity and membership types.
type (
	// ProcID identifies one process instance; recoveries use fresh
	// incarnations (GMP-4).
	ProcID = ids.ProcID
	// View is a local membership view with seniority ranks.
	View = member.View
	// Version numbers successive views.
	Version = member.Version
	// Op is a single membership update (add or remove).
	Op = member.Op
	// Config selects the protocol variant (compression, majority gate,
	// initiation timeout).
	Config = core.Config
	// Report is the verdict of the GMP property checker.
	Report = check.Report
	// ViewUpdate is one installed view streamed from a live group.
	ViewUpdate = live.ViewUpdate
	// GroupOptions configures StartGroup.
	GroupOptions = live.Options
	// SimOptions configures NewSim.
	SimOptions = scenario.Options
	// Group is a running live process group.
	Group = live.Cluster
	// Sim is a deterministic simulated process group.
	Sim = scenario.Cluster
	// Transport is the pluggable live-message substrate; set it on
	// GroupOptions.Transport to choose how the group's channels are
	// realized (nil = in-process delivery).
	Transport = transport.Transport
	// TransportStats is a transport's per-reason drop accounting, read
	// from a live group with Group.TransportStats.
	TransportStats = transport.Stats
	// TCPTransport runs the group's channels over real TCP sockets.
	TCPTransport = transport.TCP
	// UDPTransport is the connectionless datagram plane: one socket per
	// process, one datagram per frame, no queues. Built by
	// NewUDPTransport; usually composed under a TwoPlaneTransport as
	// the beacon plane rather than used alone.
	UDPTransport = transport.UDP
	// TwoPlaneTransport splits a group's traffic by class: beacons ride
	// a dedicated datagram plane, protocol messages the stream plane.
	// Built by NewUDPBeaconTransport (or NewTwoPlaneTransport for
	// custom plane pairings).
	TwoPlaneTransport = transport.TwoPlane
	// LossyTransportOptions shapes the adversarial datagram link of
	// NewLossyTransport.
	LossyTransportOptions = transport.LossyOptions
	// DetectorFactory selects a live group's failure-detection policy
	// (F1, §2.2): set it on GroupOptions.Detector. Nil keeps the fixed
	// SuspectAfter timeout.
	DetectorFactory = fd.Factory
	// AccrualDetectorOptions tunes the adaptive φ-accrual detector of
	// NewAccrualDetector.
	AccrualDetectorOptions = fd.AccrualOptions
	// HysteresisOptions tunes the suspicion-hysteresis wrapper of
	// NewHysteresisDetector.
	HysteresisOptions = fd.HysteresisOptions
	// HysteresisStats aggregates crossing/flap/mistake counters across
	// every detector built from one NewHysteresisDetector factory — set
	// it on HysteresisOptions.Stats to read cluster-wide detector QoS.
	HysteresisStats = fd.HysteresisStats
	// ReadmitPolicy rate-limits readmission of recently excluded sites
	// (GroupOptions.Readmit): a flapping site's rebirths are metered by
	// a per-site token bucket — delayed, never denied. The zero value
	// disables the governor.
	ReadmitPolicy = live.ReadmitPolicy
	// ChaosTransport degrades any inner transport with per-link delay,
	// jitter, loss, bursts and asymmetric partitions — the live chaos
	// harness. Its SetLink/Partition/Heal methods reconfigure adversity
	// while the group runs.
	ChaosTransport = transport.Chaos
	// ChaosTransportOptions configures NewChaosTransport.
	ChaosTransportOptions = transport.ChaosOptions
	// ChaosLink shapes one directed link of a ChaosTransport.
	ChaosLink = transport.ChaosLink
	// Topology selects who monitors whom in a live group (F1's
	// monitoring relation decoupled from membership); set it on
	// GroupOptions.Topology. Nil keeps all-to-all monitoring.
	Topology = topology.Topology
	// DigestMode selects how suspicions disseminate under a partial
	// topology (GroupOptions.Digests): DigestAuto batches them into
	// beacon-borne digests wherever a beacon plane exists, DigestOff
	// forces the point-to-point relay flood.
	DigestMode = live.DigestMode
)

// Digest dissemination modes for GroupOptions.Digests.
const (
	// DigestAuto (the default) rides suspicion digests on the beacon
	// plane whenever the transport has one and the topology is partial.
	DigestAuto = live.DigestAuto
	// DigestOff forces the point-to-point suspicion relay everywhere —
	// the A/B baseline of the scale experiment (E19).
	DigestOff = live.DigestOff
)

// NewInmemTransport builds the default in-process transport explicitly
// (StartGroup uses one automatically when GroupOptions.Transport is nil).
func NewInmemTransport() Transport { return transport.NewInmem() }

// NewTCPTransport builds a transport running the group's channels over
// real TCP sockets on loopback — the paper's asynchronous network of
// reliable FIFO channels (§2.1) made literal. Every unordered peer pair
// shares one multiplexed connection carrying channel-tagged binary
// frames, dialed lazily on first use: under all-to-all monitoring an
// n-process group settles at n(n−1)/2 sockets, under NewRingTopology(k)
// at ~n·k (TransportStats().ConnsOpen measures it). Use the returned
// value's AddPeer/Addr to span OS processes or hosts.
func NewTCPTransport() *TCPTransport { return transport.NewTCP() }

// NewUDPTransport builds the bare datagram plane on loopback: sends are
// fire-and-forget datagrams with no connections and no backpressure.
// It satisfies the Transport contract but deliberately provides only
// best-effort ordering, so it suits order-free traffic (beacons) —
// compose it under NewUDPBeaconTransport for a full group substrate.
func NewUDPTransport() *UDPTransport { return transport.NewUDP() }

// NewUDPBeaconTransport composes stream with a fresh loopback UDP
// datagram plane into a two-plane substrate: heartbeats bypass the
// stream plane's queues and connections entirely, so a neighbor
// saturating its link cannot delay — and thereby distort — the timing
// evidence the failure detector runs on. When stream is nil a loopback
// TCP transport is used. The live runtime detects the split and emits
// beacons cadence-pure (every interval, no piggyback suppression),
// giving adaptive detectors the cleanest possible inter-arrival
// samples.
func NewUDPBeaconTransport(stream Transport) *TwoPlaneTransport {
	if stream == nil {
		stream = transport.NewTCP()
	}
	return transport.NewTwoPlane(stream, transport.NewUDP())
}

// NewTwoPlaneTransport composes an explicit stream plane and beacon
// plane — e.g. to wrap either plane in NewChaosTransport and degrade
// one traffic class without the other.
func NewTwoPlaneTransport(stream, beacon Transport) *TwoPlaneTransport {
	return transport.NewTwoPlane(stream, beacon)
}

// NewLossyTransport builds a transport whose links lose, duplicate and
// delay datagrams, repaired per channel by the alternating-bit protocol —
// the §3 claim that the reliable-FIFO channel assumption is implementable,
// demonstrated under the live cluster.
func NewLossyTransport(opts LossyTransportOptions) Transport { return transport.NewLossy(opts) }

// NewFixedTimeoutDetector selects the classic fixed-threshold failure
// detector: suspect a member once its silence exceeds after. This is the
// default policy (GroupOptions.SuspectAfter) made explicit, for A/B runs
// against the adaptive detector.
func NewFixedTimeoutDetector(after time.Duration) DetectorFactory {
	return fd.NewTimeoutFactory(after)
}

// NewAccrualDetector selects the adaptive φ-accrual failure detector: each
// node fits a per-peer inter-arrival distribution from observed traffic
// and suspects a member once the probability of its current silence drops
// below 10^−Phi. Detection latency then tracks each link's measured
// behavior instead of a global worst-case constant — the paper's §2.2
// observation that agreement time is detector-bound, attacked at the
// detector. A zero options value selects the documented defaults.
func NewAccrualDetector(opts AccrualDetectorOptions) DetectorFactory {
	return fd.NewAccrualFactory(opts)
}

// NewHysteresisDetector wraps any detector factory with suspicion
// hysteresis: a threshold crossing must survive a further dwell of
// continuous silence before it surfaces as a suspicion, and a peer whose
// crossings keep recovering (a flapping link, a stalling scheduler) pays
// an exponentially decaying dwell penalty on its next ones. This is the
// root-cause fix for the false-suspicion cascade (§4.3): transient
// silence — a GC pause, an event-loop stall, a link flap at the
// detection threshold — is forgiven when the evidence recovers, while a
// genuinely dead member is still detected one dwell later. Dwell 0 is a
// measurement-only passthrough: behavior is unchanged but the shared
// HysteresisStats still count crossings and mistakes.
func NewHysteresisDetector(inner DetectorFactory, opts HysteresisOptions) DetectorFactory {
	return fd.NewHysteresisFactory(inner, opts)
}

// NewChaosTransport wraps inner with configurable link adversity (delay,
// jitter, loss, burst outages, asymmetric partitions — per directed peer
// pair, reconfigurable at runtime). It preserves per-channel FIFO order,
// so jitter stretches channels without reordering them; see
// ChaosLink.Loss for the one knob that deliberately steps outside the
// paper's channel assumptions.
func NewChaosTransport(inner Transport, opts ChaosTransportOptions) *ChaosTransport {
	return transport.NewChaos(inner, opts)
}

// NewFullTopology selects all-to-all monitoring: every member beacons to
// and watches every other, the default (GroupOptions.Topology = nil) made
// explicit for A/B runs. Beacon traffic and TCP connection count grow
// quadratically with the group.
func NewFullTopology() Topology { return topology.Full{} }

// NewRingTopology selects ring-k monitoring: the view's seniority order
// is closed into a ring and each member watches its k rank-successors
// (and beacons to its k rank-predecessors), recomputed at every view
// installation so churn re-closes the ring. Beacon traffic is O(n·k) and
// a TCP group settles at ~n·k connections instead of n(n−1)/2; a
// monitor's suspicion reaches the coordinator via the relay path riding
// F2 gossip, preserving F1's eventual-suspicion contract (see
// DESIGN.md §8 and experiment E17). k ≤ 0 selects the default (3);
// k ≥ n−1 degenerates to full monitoring.
func NewRingTopology(k int) Topology { return topology.RingK{K: k} }

// NewHierTopology selects hierarchical monitoring: the view's seniority
// order is cut into contiguous clusters of clusterSize, each closed into
// an intra-cluster ring-k, and the cluster leaders (each cluster's most
// senior member) form a ring-k of their own that stitches the clusters
// together. Beacon traffic stays O(n·k) like a flat ring while the
// leader ring shortens the suspicion-dissemination diameter from O(n/k)
// hops to O(clusterSize/k + n/(clusterSize·k)) — the shape that keeps
// exclusion latency flat as the group grows past the flat ring's scale
// wall (experiment E19). Values ≤ 0 select the defaults (clusters of 8,
// k = 3); one cluster degenerates to exactly NewRingTopology(k).
func NewHierTopology(clusterSize, k int) Topology {
	return topology.Hier{C: clusterSize, K: k}
}

// ParseTopology resolves the textual topology vocabulary shared by the
// CLI tools: "full", "ring[:k]", or "hier[:c[:k]]".
func ParseTopology(spec string) (Topology, error) { return topology.Parse(spec) }

// Named returns the incarnation-0 identifier for a site name.
func Named(site string) ProcID { return ids.Named(site) }

// Processes generates the conventional initial membership p1..pn.
func Processes(n int) []ProcID { return ids.Gen(n) }

// DefaultConfig is the paper's final algorithm: compressed rounds, majority
// gate, initiation timeout.
func DefaultConfig() Config { return core.DefaultConfig() }

// StartGroup boots a live process group of opts.N members and returns once
// its goroutines are running. Callers own the group and must Stop it.
func StartGroup(opts GroupOptions) *Group { return live.Start(opts) }

// NewSim builds a deterministic simulated group. Schedule failures and
// joins, call Run to quiescence, then inspect views, message counts and
// the checker's Report.
func NewSim(opts SimOptions) *Sim { return scenario.New(opts) }

// Message-count labels for the §7.2 complexity accounting, usable with
// Sim.Messages.
var (
	// ExclusionLabels are the messages of the two-phase update algorithm.
	ExclusionLabels = core.ExclusionLabels
	// ReconfigLabels are the messages of the three-phase reconfiguration.
	ReconfigLabels = core.ReconfigLabels
	// ProtocolLabels is every protocol message kind.
	ProtocolLabels = core.ProtocolLabels
)
