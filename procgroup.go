// Package procgroup is a from-scratch implementation of the group
// membership protocol of Ricciardi & Birman, "Using Process Groups to
// Implement Failure Detection in Asynchronous Environments" (Cornell
// TR 91-1188 / PODC 1991): an asymmetric, coordinator-driven membership
// service that turns unreliable failure suspicions into an agreed, totally
// ordered sequence of views — the mechanism underlying ISIS-style virtual
// synchrony.
//
// The package exposes two ways to run the protocol:
//
//   - StartGroup boots a live group: one goroutine per process, an
//     in-memory transport, and a heartbeat failure detector. This is the
//     deployment shape for applications.
//
//   - NewSim builds a deterministic simulation on virtual time with exact
//     message accounting, adversarial failure injection (crashes in
//     mid-broadcast, spurious suspicions, partitions) and a GMP property
//     checker. This is the shape for tests, benchmarks, and reproducing
//     the paper's evaluation.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record of every table and figure.
package procgroup

import (
	"procgroup/internal/check"
	"procgroup/internal/core"
	"procgroup/internal/ids"
	"procgroup/internal/live"
	"procgroup/internal/member"
	"procgroup/internal/scenario"
	"procgroup/internal/transport"
)

// Re-exported identity and membership types.
type (
	// ProcID identifies one process instance; recoveries use fresh
	// incarnations (GMP-4).
	ProcID = ids.ProcID
	// View is a local membership view with seniority ranks.
	View = member.View
	// Version numbers successive views.
	Version = member.Version
	// Op is a single membership update (add or remove).
	Op = member.Op
	// Config selects the protocol variant (compression, majority gate,
	// initiation timeout).
	Config = core.Config
	// Report is the verdict of the GMP property checker.
	Report = check.Report
	// ViewUpdate is one installed view streamed from a live group.
	ViewUpdate = live.ViewUpdate
	// GroupOptions configures StartGroup.
	GroupOptions = live.Options
	// SimOptions configures NewSim.
	SimOptions = scenario.Options
	// Group is a running live process group.
	Group = live.Cluster
	// Sim is a deterministic simulated process group.
	Sim = scenario.Cluster
	// Transport is the pluggable live-message substrate; set it on
	// GroupOptions.Transport to choose how the group's channels are
	// realized (nil = in-process delivery).
	Transport = transport.Transport
	// TransportStats is a transport's per-reason drop accounting, read
	// from a live group with Group.TransportStats.
	TransportStats = transport.Stats
	// TCPTransport runs the group's channels over real TCP sockets.
	TCPTransport = transport.TCP
	// LossyTransportOptions shapes the adversarial datagram link of
	// NewLossyTransport.
	LossyTransportOptions = transport.LossyOptions
)

// NewInmemTransport builds the default in-process transport explicitly
// (StartGroup uses one automatically when GroupOptions.Transport is nil).
func NewInmemTransport() Transport { return transport.NewInmem() }

// NewTCPTransport builds a transport running the group's channels over
// real TCP sockets on loopback — the paper's asynchronous network of
// reliable FIFO channels (§2.1) made literal. Every unordered peer pair
// shares one multiplexed connection carrying channel-tagged binary
// frames, so an n-process group opens n(n−1)/2 sockets. Use the returned
// value's AddPeer/Addr to span OS processes or hosts.
func NewTCPTransport() *TCPTransport { return transport.NewTCP() }

// NewLossyTransport builds a transport whose links lose, duplicate and
// delay datagrams, repaired per channel by the alternating-bit protocol —
// the §3 claim that the reliable-FIFO channel assumption is implementable,
// demonstrated under the live cluster.
func NewLossyTransport(opts LossyTransportOptions) Transport { return transport.NewLossy(opts) }

// Named returns the incarnation-0 identifier for a site name.
func Named(site string) ProcID { return ids.Named(site) }

// Processes generates the conventional initial membership p1..pn.
func Processes(n int) []ProcID { return ids.Gen(n) }

// DefaultConfig is the paper's final algorithm: compressed rounds, majority
// gate, initiation timeout.
func DefaultConfig() Config { return core.DefaultConfig() }

// StartGroup boots a live process group of opts.N members and returns once
// its goroutines are running. Callers own the group and must Stop it.
func StartGroup(opts GroupOptions) *Group { return live.Start(opts) }

// NewSim builds a deterministic simulated group. Schedule failures and
// joins, call Run to quiescence, then inspect views, message counts and
// the checker's Report.
func NewSim(opts SimOptions) *Sim { return scenario.New(opts) }

// Message-count labels for the §7.2 complexity accounting, usable with
// Sim.Messages.
var (
	// ExclusionLabels are the messages of the two-phase update algorithm.
	ExclusionLabels = core.ExclusionLabels
	// ReconfigLabels are the messages of the three-phase reconfiguration.
	ReconfigLabels = core.ReconfigLabels
	// ProtocolLabels is every protocol message kind.
	ProtocolLabels = core.ProtocolLabels
)
